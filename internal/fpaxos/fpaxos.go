// Package fpaxos implements the Flexible Paxos baseline of the paper
// (Howard et al., OPODIS 2016): leader-based state-machine replication
// where the leader commits a log slot after acknowledgment by a phase-2
// quorum of only f+1 processes (recovery would use quorums of r−f; the
// evaluation runs failure-free, matching the paper's setup).
//
// The leader is the single point of ordering: every command is forwarded
// to it, which is what makes FPaxos unfair to distant clients (Figure 5)
// and leader-bottlenecked at high load (Figure 7). Site-local batching
// (Figure 8) aggregates commands before forwarding/proposing.
package fpaxos

import (
	"fmt"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/kvstore"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// FForward carries client commands from a follower site to the leader.
//
//tempo:wire
type FForward struct {
	Cmds []*command.Command
}

// FAccept is Paxos phase 2 for one log slot.
//
//tempo:wire
type FAccept struct {
	Slot   uint64
	Ballot ids.Ballot
	Cmds   []*command.Command
}

// FAcceptAck acknowledges FAccept.
//
//tempo:wire
type FAcceptAck struct {
	Slot   uint64
	Ballot ids.Ballot
}

// FCommit announces a decided slot to every replica.
//
//tempo:wire
type FCommit struct {
	Slot uint64
	Cmds []*command.Command
}

// FSlotReq asks the leader to resend decided slots starting at Next.
// Followers issue it from Tick when their execution cursor is stuck
// behind a slot they have seen proposed or decided (an FCommit lost on
// a cut link would otherwise stall execution forever); the leader
// answers with FCommit per retained slot.
//
//tempo:wire
type FSlotReq struct {
	Next uint64
}

const hdr = 16

func cmdsSize(cs []*command.Command) int {
	n := 0
	for _, c := range cs {
		n += c.SizeBytes()
	}
	return n
}

// Size implements proto.Message.
func (m *FForward) Size() int { return hdr + cmdsSize(m.Cmds) }

// Size implements proto.Message.
func (m *FAccept) Size() int { return hdr + 16 + cmdsSize(m.Cmds) }

// Size implements proto.Message.
func (m *FAcceptAck) Size() int { return hdr + 16 }

// Size implements proto.Message.
func (m *FCommit) Size() int { return hdr + 8 + cmdsSize(m.Cmds) }

// Size implements proto.Message.
func (m *FSlotReq) Size() int { return hdr }

// Config tunes a replica.
type Config struct {
	// Batching aggregates commands at each site before forwarding or
	// proposing (Figure 8). A batch flushes after BatchWindow or at
	// MaxBatch commands, whichever comes first.
	Batching    bool
	BatchWindow time.Duration
	MaxBatch    int
	// ResendInterval arms the recovery machinery for lossy transports
	// (the cluster runtime): every interval, the leader re-runs phase 2
	// for stalled uncommitted slots and followers with a stuck execution
	// cursor request decided slots back with FSlotReq. Zero disables it
	// — the simulator and testnet runs are loss-free.
	ResendInterval time.Duration
	// HistorySlots bounds how many executed slots each replica retains
	// to answer FSlotReq catch-ups (default 4096).
	HistorySlots uint64
}

func (c Config) withDefaults() Config {
	if c.BatchWindow == 0 {
		c.BatchWindow = 5 * time.Millisecond
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 105 // the paper's batch cap
	}
	if c.HistorySlots == 0 {
		c.HistorySlots = 4096
	}
	return c
}

type slot struct {
	cmds      []*command.Command
	acks      map[ids.ProcessID]bool
	committed bool
	// born is the tick-clock time this slot was proposed here, so
	// recovery resends only rounds that have actually stalled.
	born time.Duration
}

// Process is an FPaxos replica. It implements proto.Replica.
type Process struct {
	id    ids.ProcessID
	shard ids.ShardID
	rank  ids.Rank
	r, f  int
	topo  *topology.Topology
	cfg   Config

	leaderRank ids.Rank
	nextSlot   uint64
	nextID     uint64
	// seenSeq tracks the highest command-sequence number observed per
	// source process — the membership frontier (see ObservedFrom).
	seenSeq  map[ids.ProcessID]uint64
	log      map[uint64]*slot
	execNext uint64
	store    *kvstore.Store

	pending   []*command.Command
	lastFlush time.Duration

	executedOut []proto.Executed
	crashed     bool
	proposed    uint64

	deferApply bool
	stableOut  []proto.Stable

	// Recovery state: the tick clock, the last recovery sweep, the
	// highest slot seen proposed or decided, and the retained window of
	// executed slots answering FSlotReq.
	now       time.Duration
	lastSweep time.Duration
	maxSlot   uint64
	hist      map[uint64][]*command.Command
	histMin   uint64
}

var _ proto.Replica = (*Process)(nil)
var _ proto.LeaderAware = (*Process)(nil)
var _ proto.Crashable = (*Process)(nil)
var _ proto.IDMinter = (*Process)(nil)
var _ proto.DeferredApplier = (*Process)(nil)
var _ proto.Joiner = (*Process)(nil)

// New creates an FPaxos replica; the initial leader is rank 1.
func New(id ids.ProcessID, topo *topology.Topology, cfg Config) *Process {
	pi := topo.Process(id)
	if pi.ID != id {
		panic(fmt.Sprintf("fpaxos: unknown process %d", id))
	}
	return &Process{
		id:         id,
		shard:      pi.Shard,
		rank:       pi.Rank,
		r:          topo.R(),
		f:          topo.F(),
		topo:       topo,
		cfg:        cfg.withDefaults(),
		leaderRank: 1,
		seenSeq:    make(map[ids.ProcessID]uint64),
		log:        make(map[uint64]*slot),
		execNext:   1,
		store:      kvstore.New(),
		hist:       make(map[uint64][]*command.Command),
		histMin:    1,
	}
}

// ID implements proto.Replica.
func (p *Process) ID() ids.ProcessID { return p.id }

// Store returns the replica's key-value store.
func (p *Process) Store() *kvstore.Store { return p.store }

// Proposed returns the number of slots this process proposed as leader.
func (p *Process) Proposed() uint64 { return p.proposed }

// SetLeader implements proto.LeaderAware.
func (p *Process) SetLeader(rank ids.Rank) { p.leaderRank = rank }

// Crash implements proto.Crashable.
func (p *Process) Crash() { p.crashed = true }

// NextID mints a fresh command identifier. It implements proto.IDMinter.
func (p *Process) NextID() ids.Dot {
	p.nextID++
	return ids.Dot{Source: p.id, Seq: p.nextID}
}

// noteCmds records the highest command-sequence number seen per source
// process — the membership frontier (commands enter a replica via
// propose, FAccept and FCommit).
func (p *Process) noteCmds(cmds []*command.Command) {
	for _, c := range cmds {
		if c.ID.Seq > p.seenSeq[c.ID.Source] {
			p.seenSeq[c.ID.Source] = c.ID.Seq
		}
	}
}

// ObservedFrom implements proto.Joiner: the highest slot this replica
// has seen proposed (the leader's "clock") and the highest
// command-sequence number observed from pid. FPaxos leader replacement
// is out of membership's scope — replacing the leader's slot requires
// a leader-change protocol (SetLeader is the oracle hook); followers
// replace cleanly via slot catch-up (FSlotReq).
func (p *Process) ObservedFrom(pid ids.ProcessID) (clock, seq uint64) {
	return p.maxSlot, p.seenSeq[pid]
}

// JoinFloor implements proto.Joiner: a successor must not re-mint its
// predecessor's command ids, and — should it ever lead — not reuse
// slots the shard has seen.
func (p *Process) JoinFloor(clock, seq uint64) {
	if seq > p.nextID {
		p.nextID = seq
	}
	if clock > p.nextSlot {
		p.nextSlot = clock
	}
	if clock > p.maxSlot {
		p.maxSlot = clock
	}
}

// Shard returns the one shard this replica replicates. The cluster
// runtime uses it to route client requests.
func (p *Process) Shard() ids.ShardID { return p.shard }

// OpsShard returns the shard owning every key of ops and true, or false
// when the ops span shards. It reads only immutable topology, so it is
// safe to call concurrently with protocol steps.
func (p *Process) OpsShard(ops []command.Op) (ids.ShardID, bool) {
	if len(ops) == 0 {
		return 0, false
	}
	s := p.topo.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if p.topo.ShardOf(op.Key) != s {
			return 0, false
		}
	}
	return s, true
}

// SetDeferredApply implements proto.DeferredApplier.
func (p *Process) SetDeferredApply(on bool) { p.deferApply = on }

// DrainStable implements proto.DeferredApplier.
func (p *Process) DrainStable() []proto.Stable {
	out := p.stableOut
	p.stableOut = nil
	return out
}

// ApplyStable implements proto.DeferredApplier. The ts argument (the
// slot number) is ignored: slots carry multiple commands, so the slot
// number is not unique per command and the store's watermark entry
// point cannot be used. Re-apply idempotency is not needed — the
// baselines are not Durable.
func (p *Process) ApplyStable(cmd *command.Command, _ uint64) *command.Result {
	return p.store.Apply(cmd, p.shard, p.topo.ShardOf)
}

func (p *Process) leaderID() ids.ProcessID {
	for _, q := range p.topo.ShardProcesses(p.shard) {
		if p.topo.Process(q).Rank == p.leaderRank {
			return q
		}
	}
	return 0
}

func (p *Process) isLeader() bool { return p.rank == p.leaderRank }

// Submit implements proto.Replica.
func (p *Process) Submit(cmd *command.Command) []proto.Action {
	if p.crashed {
		return nil
	}
	if p.cfg.Batching {
		p.pending = append(p.pending, cmd)
		if len(p.pending) >= p.cfg.MaxBatch {
			return p.route(p.flush())
		}
		return nil
	}
	return p.route(p.dispatch([]*command.Command{cmd}))
}

// dispatch proposes locally (leader) or forwards a batch to the leader.
func (p *Process) dispatch(cmds []*command.Command) []proto.Action {
	if p.isLeader() {
		return p.propose(cmds)
	}
	return []proto.Action{proto.Send(&FForward{Cmds: cmds}, p.leaderID())}
}

// propose assigns the next slot and runs phase 2 on the f+1 nearest
// acceptors (including self).
func (p *Process) propose(cmds []*command.Command) []proto.Action {
	p.noteCmds(cmds)
	p.nextSlot++
	p.proposed++
	s := p.nextSlot
	if s > p.maxSlot {
		p.maxSlot = s
	}
	st := &slot{cmds: cmds, acks: map[ids.ProcessID]bool{}, born: p.now}
	p.log[s] = st
	quorum := p.topo.FastQuorum(p.id, p.f+1)
	return []proto.Action{proto.Send(&FAccept{Slot: s, Ballot: ids.Ballot(p.rank), Cmds: cmds}, quorum...)}
}

// flush sends out any batched commands.
func (p *Process) flush() []proto.Action {
	if len(p.pending) == 0 {
		return nil
	}
	cmds := p.pending
	p.pending = nil
	return p.dispatch(cmds)
}

// Handle implements proto.Replica.
func (p *Process) Handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	if p.crashed {
		return nil
	}
	return p.route(p.handle(from, msg))
}

func (p *Process) route(acts []proto.Action) []proto.Action {
	var out []proto.Action
	queue := acts
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		var others []ids.ProcessID
		self := false
		for _, to := range a.To {
			if to == p.id {
				self = true
			} else {
				others = append(others, to)
			}
		}
		if len(others) > 0 {
			out = append(out, proto.Action{To: others, Msg: a.Msg})
		}
		if self {
			queue = append(queue, p.handle(p.id, a.Msg)...)
		}
	}
	return out
}

func (p *Process) handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	switch m := msg.(type) {
	case *FForward:
		if !p.isLeader() {
			// Stale leader view at the sender: re-forward.
			return []proto.Action{proto.Send(m, p.leaderID())}
		}
		return p.propose(m.Cmds)
	case *FAccept:
		// Failure-free phase 2: accept unconditionally.
		p.noteCmds(m.Cmds)
		if m.Slot > p.maxSlot {
			p.maxSlot = m.Slot
		}
		if m.Slot < p.execNext {
			// Already executed here (a recovery resend): re-ack only.
			return []proto.Action{proto.Send(&FAcceptAck{Slot: m.Slot, Ballot: m.Ballot}, from)}
		}
		if _, ok := p.log[m.Slot]; !ok {
			p.log[m.Slot] = &slot{cmds: m.Cmds}
		}
		return []proto.Action{proto.Send(&FAcceptAck{Slot: m.Slot, Ballot: m.Ballot}, from)}
	case *FAcceptAck:
		st, ok := p.log[m.Slot]
		if !ok || st.committed || st.acks == nil {
			return nil
		}
		st.acks[from] = true
		if len(st.acks) < p.f+1 {
			return nil
		}
		st.acks = nil
		return []proto.Action{proto.Send(&FCommit{Slot: m.Slot, Cmds: st.cmds}, p.topo.ShardProcesses(p.shard)...)}
	case *FCommit:
		p.noteCmds(m.Cmds)
		if m.Slot > p.maxSlot {
			p.maxSlot = m.Slot
		}
		if m.Slot < p.execNext {
			return nil // already executed here (a recovery resend)
		}
		st, ok := p.log[m.Slot]
		if !ok {
			st = &slot{cmds: m.Cmds}
			p.log[m.Slot] = st
		}
		st.committed = true
		p.executeReady()
		return nil
	case *FSlotReq:
		return p.onSlotReq(from, m)
	default:
		panic(fmt.Sprintf("fpaxos: unknown message %T", msg))
	}
}

// executeReady applies committed slots in order. Executed slot payloads
// move to the bounded history window so this replica can answer a
// lagging peer's FSlotReq.
func (p *Process) executeReady() {
	for {
		st, ok := p.log[p.execNext]
		if !ok || !st.committed {
			return
		}
		for _, c := range st.cmds {
			if p.deferApply {
				p.stableOut = append(p.stableOut,
					proto.Stable{Cmd: c, Shard: p.shard, TS: p.execNext})
				continue
			}
			res := p.store.Apply(c, p.shard, p.topo.ShardOf)
			p.executedOut = append(p.executedOut, proto.Executed{Cmd: c, Shard: p.shard, Result: res})
		}
		p.hist[p.execNext] = st.cmds
		delete(p.log, p.execNext)
		p.execNext++
	}
	// Pruned lazily in Tick; execution stays allocation-flat.
}

// onSlotReq resends decided slots from Next, from the history window or
// the committed-but-unexecuted log, stopping at the first slot this
// replica has not decided (the requester retries next sweep if still
// stuck). The reply batch is bounded to keep messages small.
func (p *Process) onSlotReq(from ids.ProcessID, m *FSlotReq) []proto.Action {
	const maxBatch = 64
	var acts []proto.Action
	for s := m.Next; s < m.Next+maxBatch; s++ {
		if cmds, ok := p.hist[s]; ok {
			acts = append(acts, proto.Send(&FCommit{Slot: s, Cmds: cmds}, from))
			continue
		}
		if st, ok := p.log[s]; ok && st.committed {
			acts = append(acts, proto.Send(&FCommit{Slot: s, Cmds: st.cmds}, from))
			continue
		}
		break
	}
	return acts
}

// Tick implements proto.Replica: flushes batches, and with
// Config.ResendInterval set drives recovery on lossy transports — the
// leader re-runs phase 2 for stalled uncommitted slots, and a follower
// whose execution cursor is stuck behind a slot it has seen requests the
// decided slots back from the leader.
func (p *Process) Tick(now time.Duration) []proto.Action {
	if p.crashed {
		return nil
	}
	p.now = now
	var acts []proto.Action
	if p.cfg.Batching && now-p.lastFlush >= p.cfg.BatchWindow {
		p.lastFlush = now
		acts = p.flush()
	}
	if p.cfg.ResendInterval > 0 && now-p.lastSweep >= p.cfg.ResendInterval {
		p.lastSweep = now
		acts = append(acts, p.recoverySweep(now)...)
		p.pruneHist()
	}
	if len(acts) == 0 {
		return nil
	}
	return p.route(acts)
}

// recoverySweep emits the resends and catch-up requests for one sweep.
func (p *Process) recoverySweep(now time.Duration) []proto.Action {
	var acts []proto.Action
	if p.isLeader() {
		for s, st := range p.log {
			if st.committed || st.acks == nil || now-st.born < p.cfg.ResendInterval {
				continue
			}
			quorum := p.topo.FastQuorum(p.id, p.f+1)
			acts = append(acts, proto.Send(&FAccept{Slot: s, Ballot: ids.Ballot(p.rank), Cmds: st.cmds}, quorum...))
		}
		return acts
	}
	if p.execNext <= p.maxSlot {
		if st, ok := p.log[p.execNext]; !ok || !st.committed {
			acts = append(acts, proto.Send(&FSlotReq{Next: p.execNext}, p.leaderID()))
		}
	}
	return acts
}

// pruneHist drops retained slots older than the history window.
func (p *Process) pruneHist() {
	if p.execNext <= p.cfg.HistorySlots {
		return
	}
	floor := p.execNext - p.cfg.HistorySlots
	for ; p.histMin < floor; p.histMin++ {
		delete(p.hist, p.histMin)
	}
}

// Drain implements proto.Replica.
func (p *Process) Drain() []proto.Executed {
	out := p.executedOut
	p.executedOut = nil
	return out
}
