package sim

import (
	"math/rand"
	"testing"
	"time"

	"tempo/internal/caesar"
	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

func tempoReplica(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
	return func(id ids.ProcessID) proto.Replica {
		// Failure-free runs (as in the paper's evaluation): recovery off,
		// otherwise queueing delays beyond the timeout trigger spurious
		// recoveries that amplify overload.
		return tempo.New(id, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
	}
}

func runProto(t *testing.T, name string, topo *topology.Topology, nr func(ids.ProcessID) proto.Replica, seed int64) *Result {
	t.Helper()
	res := Run(Config{
		Topo:           topo,
		NewReplica:     nr,
		Workload:       workload.NewMicrobench(0.05, 16, rand.New(rand.NewSource(seed))),
		ClientsPerSite: 4,
		Warmup:         300 * time.Millisecond,
		Duration:       1200 * time.Millisecond,
		Seed:           seed,
		Check:          true,
	})
	if res.CheckErr != nil {
		t.Fatalf("%s: PSMR violation: %v", name, res.CheckErr)
	}
	if res.Completed == 0 {
		t.Fatalf("%s: nothing completed", name)
	}
	return res
}

func TestAllProtocolsCompleteAndSatisfyPSMR(t *testing.T) {
	topo := topology.EC2(1)
	cases := []struct {
		name string
		nr   func(ids.ProcessID) proto.Replica
	}{
		{"tempo", tempoReplica(topo)},
		{"atlas", func(id ids.ProcessID) proto.Replica {
			return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantAtlas})
		}},
		{"epaxos", func(id ids.ProcessID) proto.Replica {
			return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantEPaxos})
		}},
		{"fpaxos", func(id ids.ProcessID) proto.Replica {
			return fpaxos.New(id, topo, fpaxos.Config{})
		}},
		{"caesar", func(id ids.ProcessID) proto.Replica {
			return caesar.New(id, topo, caesar.Config{})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := runProto(t, c.name, topo, c.nr, 42)
			t.Logf("%s: %d ops, %.0f ops/s, mean %v", c.name, res.Completed, res.Throughput, res.All.Mean())
		})
	}
}

// TestTempoLatencyMatchesQuorumGeometry: with f=1 and 5 EC2 sites, a
// Tempo client's commit latency at a site is roughly the RTT to the 2nd
// closest site (fast quorum = self + 2 closest). For Ireland that is
// N. California: 141ms.
func TestTempoLatencyMatchesQuorumGeometry(t *testing.T) {
	topo := topology.EC2(1)
	res := Run(Config{
		Topo:           topo,
		NewReplica:     tempoReplica(topo),
		Workload:       workload.NewMicrobench(0.02, 16, rand.New(rand.NewSource(1))),
		ClientsPerSite: 2,
		Warmup:         300 * time.Millisecond,
		Duration:       1500 * time.Millisecond,
		Seed:           1,
	})
	ireland := ids.SiteID(0)
	mean := res.SiteMean(ireland)
	// Commit takes the fast-quorum RTT (141ms for Ireland); execution
	// additionally waits until the timestamp is stable, i.e. until the
	// commits of in-flight lower-timestamped commands propagate (up to
	// one cross-site commit chain). See EXPERIMENTS.md for the deviation
	// analysis against the paper's Figure 5.
	if mean < 135*time.Millisecond || mean > 250*time.Millisecond {
		t.Errorf("Ireland mean latency %v, want within [135ms, 250ms]", mean)
	}
}

// TestFPaxosUnfairness: FPaxos satisfies the leader site far better than
// remote sites (Figure 5's finding).
func TestFPaxosUnfairness(t *testing.T) {
	topo := topology.EC2(1)
	res := Run(Config{
		Topo: topo,
		NewReplica: func(id ids.ProcessID) proto.Replica {
			return fpaxos.New(id, topo, fpaxos.Config{})
		},
		Workload:       workload.NewMicrobench(0.02, 16, rand.New(rand.NewSource(2))),
		ClientsPerSite: 2,
		Warmup:         300 * time.Millisecond,
		Duration:       1500 * time.Millisecond,
		Seed:           2,
	})
	leaderSite := ids.SiteID(0) // Ireland, rank 1
	singapore := ids.SiteID(2)
	lm, sm := res.SiteMean(leaderSite), res.SiteMean(singapore)
	if sm < 2*lm {
		t.Errorf("FPaxos should be unfair: leader %v vs singapore %v", lm, sm)
	}
}

// TestTempoFairness: Tempo's per-site latencies are far more uniform than
// FPaxos's.
func TestTempoFairness(t *testing.T) {
	topo := topology.EC2(1)
	res := Run(Config{
		Topo:           topo,
		NewReplica:     tempoReplica(topo),
		Workload:       workload.NewMicrobench(0.02, 16, rand.New(rand.NewSource(3))),
		ClientsPerSite: 2,
		Warmup:         300 * time.Millisecond,
		Duration:       1500 * time.Millisecond,
		Seed:           3,
	})
	var minM, maxM time.Duration
	for s := ids.SiteID(0); s < 5; s++ {
		m := res.SiteMean(s)
		if minM == 0 || m < minM {
			minM = m
		}
		if m > maxM {
			maxM = m
		}
	}
	if maxM > 3*minM {
		t.Errorf("Tempo per-site latencies too skewed: %v..%v", minM, maxM)
	}
}

// TestCPUModelSaturates: with a CPU cost model, adding clients stops
// increasing throughput (saturation), and utilization approaches 1.
func TestCPUModelSaturates(t *testing.T) {
	topo := topology.EC2(1)
	cost := &CostModel{PerMsg: 200 * time.Microsecond, PerExec: 20 * time.Microsecond}
	run := func(clients int) *Result {
		return Run(Config{
			Topo:           topo,
			NewReplica:     tempoReplica(topo),
			Workload:       workload.NewMicrobench(0.02, 16, rand.New(rand.NewSource(4))),
			ClientsPerSite: clients,
			Warmup:         200 * time.Millisecond,
			Duration:       time.Second,
			Seed:           4,
			Cost:           cost,
		})
	}
	small := run(2)
	big := run(120)
	if big.Throughput < small.Throughput {
		t.Errorf("more clients should not lose throughput before saturation: %.0f vs %.0f",
			big.Throughput, small.Throughput)
	}
	if big.CPUUtil < 0.5 {
		t.Errorf("expected CPU pressure at 120 clients/site, util %.2f", big.CPUUtil)
	}
	t.Logf("2 clients: %.0f ops/s; 120 clients: %.0f ops/s (cpu %.2f)", small.Throughput, big.Throughput, big.CPUUtil)
}

// TestNICModel: broadcast-heavy FPaxos leader accumulates NIC usage with
// big payloads.
func TestNICModel(t *testing.T) {
	topo := topology.EC2(1)
	cost := &CostModel{NICBytesPerSec: 2 << 20} // 2 MB/s: tiny, to see the effect
	res := Run(Config{
		Topo: topo,
		NewReplica: func(id ids.ProcessID) proto.Replica {
			return fpaxos.New(id, topo, fpaxos.Config{})
		},
		Workload:       workload.NewMicrobench(0.0, 4096, rand.New(rand.NewSource(5))),
		ClientsPerSite: 8,
		Warmup:         200 * time.Millisecond,
		Duration:       time.Second,
		Seed:           5,
		Cost:           cost,
	})
	if res.NetUtil < 0.5 {
		t.Errorf("expected NIC saturation at the leader, util %.2f", res.NetUtil)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

// TestPartialReplicationMultiShard: Tempo with 2 shards over the §6.4
// geometry completes cross-shard commands.
func TestPartialReplicationMultiShard(t *testing.T) {
	topo := topology.EC2Sharded(2)
	res := Run(Config{
		Topo:           topo,
		NewReplica:     tempoReplica(topo),
		Workload:       workload.NewYCSBT(1000, 0.5, 0.5, rand.New(rand.NewSource(6))),
		ClientsPerSite: 3,
		ClientSites:    []ids.SiteID{0, 1, 2},
		Warmup:         300 * time.Millisecond,
		Duration:       1500 * time.Millisecond,
		Seed:           6,
		Check:          true,
	})
	if res.CheckErr != nil {
		t.Fatalf("PSMR violation: %v", res.CheckErr)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	t.Logf("2-shard tempo: %d ops, %.0f ops/s, mean %v", res.Completed, res.Throughput, res.All.Mean())
}

// TestDeterminism: same seed, same result.
func TestDeterminism(t *testing.T) {
	topo := topology.EC2(1)
	run := func() (uint64, time.Duration) {
		res := Run(Config{
			Topo:           topo,
			NewReplica:     tempoReplica(topo),
			Workload:       workload.NewMicrobench(0.1, 16, rand.New(rand.NewSource(9))),
			ClientsPerSite: 3,
			Warmup:         100 * time.Millisecond,
			Duration:       500 * time.Millisecond,
			Seed:           9,
		})
		return res.Completed, res.All.Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
}

func TestJanusStyleInSim(t *testing.T) {
	topo := topology.EC2Sharded(2)
	res := Run(Config{
		Topo: topo,
		NewReplica: func(id ids.ProcessID) proto.Replica {
			return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantAtlas, NonGenuineCommit: true})
		},
		Workload:       workload.NewYCSBT(1000, 0.5, 0.5, rand.New(rand.NewSource(7))),
		ClientsPerSite: 3,
		ClientSites:    []ids.SiteID{0, 1, 2},
		Warmup:         300 * time.Millisecond,
		Duration:       1200 * time.Millisecond,
		Seed:           7,
		Check:          true,
	})
	if res.CheckErr != nil {
		t.Fatalf("PSMR violation: %v", res.CheckErr)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func BenchmarkSimTempoThroughput(b *testing.B) {
	topo := topology.EC2(1)
	for i := 0; i < b.N; i++ {
		Run(Config{
			Topo:           topo,
			NewReplica:     tempoReplica(topo),
			Workload:       workload.NewMicrobench(0.02, 100, rand.New(rand.NewSource(1))),
			ClientsPerSite: 8,
			Warmup:         100 * time.Millisecond,
			Duration:       500 * time.Millisecond,
			Seed:           1,
		})
	}
}
