package sim

import (
	"fmt"
	"math/rand"
	"time"

	"tempo/internal/check"
	"tempo/internal/ids"
	"tempo/internal/metrics"
	"tempo/internal/proto"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// idMinter is implemented by replicas that mint command identifiers
// (every protocol in this repository does).
type idMinter interface{ NextID() ids.Dot }

// Config describes one experiment run.
type Config struct {
	Topo       *topology.Topology
	NewReplica func(ids.ProcessID) proto.Replica
	Workload   workload.Workload
	// ClientsPerSite closed-loop clients are colocated with each client
	// site (default: every site).
	ClientsPerSite int
	ClientSites    []ids.SiteID
	// Warmup is excluded from measurement; the run lasts Warmup +
	// Duration of simulated time.
	Warmup   time.Duration
	Duration time.Duration
	// TickInterval drives periodic protocol work (default 2ms).
	TickInterval time.Duration
	Cost         *CostModel
	Seed         int64
	// Check runs the PSMR checker over the full execution logs (slows
	// large runs; meant for tests).
	Check bool
}

// Result aggregates a run's measurements.
type Result struct {
	PerSite    map[ids.SiteID]*metrics.Histogram
	All        *metrics.Histogram
	Throughput float64 // completed ops per simulated second (measured window)
	Completed  uint64
	CPUUtil    float64
	ExecUtil   float64
	NetUtil    float64
	CheckErr   error
}

// SiteMean returns the mean latency at a site.
func (r *Result) SiteMean(s ids.SiteID) time.Duration { return r.PerSite[s].Mean() }

type client struct {
	id      int
	site    ids.SiteID
	rng     *rand.Rand
	pending ids.Dot
	start   time.Duration
	// remaining co-located processes that still must execute the
	// command.
	remaining map[ids.ProcessID]bool
}

type runner struct {
	cfg     Config
	sim     *Sim
	clients []*client
	byCmd   map[ids.Dot]*client
	res     *Result
	tp      *metrics.Throughput
	chk     *check.Checker
	logs    map[ids.ProcessID][]ids.Dot
}

// Run executes the experiment and returns its measurements.
func Run(cfg Config) *Result {
	if cfg.ClientsPerSite == 0 {
		cfg.ClientsPerSite = 1
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 2 * time.Millisecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = time.Second
	}
	if cfg.ClientSites == nil {
		for _, s := range cfg.Topo.Sites() {
			cfg.ClientSites = append(cfg.ClientSites, s.ID)
		}
	}
	r := &runner{
		cfg:   cfg,
		sim:   New(cfg.Topo, cfg.NewReplica, cfg.Cost, cfg.Seed),
		byCmd: make(map[ids.Dot]*client),
		res: &Result{
			PerSite: make(map[ids.SiteID]*metrics.Histogram),
			All:     &metrics.Histogram{},
		},
		tp:   metrics.NewThroughput(cfg.Warmup),
		logs: make(map[ids.ProcessID][]ids.Dot),
	}
	if cfg.Check {
		r.chk = check.New()
	}
	for _, s := range cfg.ClientSites {
		r.res.PerSite[s] = &metrics.Histogram{}
	}
	r.sim.SetExecutedHook(r.onExecuted)

	// Clients, staggered over the first millisecond.
	n := 0
	for _, site := range cfg.ClientSites {
		for i := 0; i < cfg.ClientsPerSite; i++ {
			c := &client{
				id:   n,
				site: site,
				rng:  rand.New(rand.NewSource(cfg.Seed + int64(n) + 1)),
			}
			r.clients = append(r.clients, c)
			delay := time.Duration(n%100) * 10 * time.Microsecond
			cl := c
			r.sim.schedule(delay, func() { r.submitNext(cl) })
			n++
		}
	}
	r.sim.StartTicks(cfg.TickInterval)
	r.sim.Run(cfg.Warmup + cfg.Duration)

	r.res.Throughput = r.tp.OpsPerSec()
	r.res.Completed = r.tp.Completed()
	r.res.CPUUtil, r.res.ExecUtil, r.res.NetUtil = r.sim.Utilization()
	if r.chk != nil {
		for pid, order := range r.logs {
			r.chk.Executed(check.Log{
				Process: pid,
				Shard:   cfg.Topo.Process(pid).Shard,
				Order:   order,
			})
		}
		r.res.CheckErr = r.chk.Verify()
	}
	return r.res
}

// submitNext generates and submits the client's next command.
func (r *runner) submitNext(c *client) {
	ops := r.cfg.Workload.NextOps(c.id)
	// Submit at the co-located replica of the first accessed shard.
	firstShard := r.cfg.Topo.ShardOf(ops[0].Key)
	proc := r.cfg.Topo.ProcessAt(c.site, firstShard)
	if proc == 0 {
		panic(fmt.Sprintf("sim: site %d does not replicate shard %d", c.site, firstShard))
	}
	rep := r.sim.Replica(proc)
	id := rep.(idMinter).NextID()
	cmd := workload.MakeCommand(id, ops, r.cfg.Workload.PayloadBytes())

	c.pending = id
	c.start = r.sim.Now()
	c.remaining = make(map[ids.ProcessID]bool, 2)
	for _, s := range cmd.Shards(r.cfg.Topo.ShardOf) {
		p := r.cfg.Topo.ProcessAt(c.site, s)
		if p == 0 {
			// The client's site does not replicate this shard: fall back
			// to the closest replica (return-value aggregation would
			// fetch it remotely; latency-wise we wait for the closest).
			p = r.cfg.Topo.ClosestPerShard(proc, []ids.ShardID{s})[0]
		}
		c.remaining[p] = true
	}
	r.byCmd[id] = c
	if r.chk != nil {
		r.chk.Submitted(cmd)
	}
	r.sim.Submit(proc, func(rep proto.Replica) []proto.Action { return rep.Submit(cmd) })
}

// onExecuted completes client commands and records logs.
func (r *runner) onExecuted(at time.Duration, p ids.ProcessID, ex []proto.Executed) {
	completedHere := 0
	for _, e := range ex {
		if r.chk != nil {
			r.logs[p] = append(r.logs[p], e.Cmd.ID)
		}
		c, ok := r.byCmd[e.Cmd.ID]
		if !ok || !c.remaining[p] {
			continue
		}
		delete(c.remaining, p)
		if len(c.remaining) > 0 {
			continue
		}
		// Command complete at this client.
		delete(r.byCmd, e.Cmd.ID)
		lat := at - c.start
		if at >= r.cfg.Warmup {
			r.res.PerSite[c.site].Add(lat)
			r.res.All.Add(lat)
			r.tp.Done(at, 1)
			completedHere++
		}
		cl := c
		r.sim.schedule(at, func() { r.submitNext(cl) })
	}
	_ = completedHere
}
