package sim

import (
	"testing"
	"time"
)

func TestCostModelNilIsFree(t *testing.T) {
	var c *CostModel
	if c.msgCost(4096) != 0 || c.execCost(10, 100) != 0 || c.txTime(1<<20) != 0 || c.sendCost(100) != 0 {
		t.Error("nil cost model must be free")
	}
}

func TestMsgCost(t *testing.T) {
	c := &CostModel{PerMsg: 10 * time.Microsecond, PerByte: 2 * time.Nanosecond}
	if got := c.msgCost(1000); got != 12*time.Microsecond {
		t.Errorf("msgCost = %v, want 12µs", got)
	}
}

func TestExecCostWithGraph(t *testing.T) {
	c := &CostModel{PerExec: 5 * time.Microsecond, PerGraphNode: time.Microsecond}
	if got := c.execCost(2, 10); got != 20*time.Microsecond {
		t.Errorf("execCost = %v, want 20µs", got)
	}
	// Without a graph penalty configured, pending nodes are free.
	c2 := &CostModel{PerExec: 5 * time.Microsecond}
	if got := c2.execCost(2, 10); got != 10*time.Microsecond {
		t.Errorf("execCost = %v, want 10µs", got)
	}
}

func TestTxTime(t *testing.T) {
	c := &CostModel{NICBytesPerSec: 1 << 20} // 1 MiB/s
	if got := c.txTime(1 << 20); got != time.Second {
		t.Errorf("txTime = %v, want 1s", got)
	}
	if (&CostModel{}).txTime(1<<20) != 0 {
		t.Error("zero bandwidth means infinite")
	}
}

func TestEventHeapOrdering(t *testing.T) {
	s := &Sim{}
	var fired []int
	s.schedule(3*time.Millisecond, func() { fired = append(fired, 3) })
	s.schedule(1*time.Millisecond, func() { fired = append(fired, 1) })
	s.schedule(2*time.Millisecond, func() { fired = append(fired, 2) })
	// Ties break by scheduling order.
	s.schedule(2*time.Millisecond, func() { fired = append(fired, 22) })
	s.Run(time.Second)
	want := []int{1, 2, 22, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("now = %v", s.Now())
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	s := &Sim{}
	ran := false
	s.schedule(2*time.Second, func() { ran = true })
	s.Run(time.Second)
	if ran {
		t.Error("event beyond the deadline must not fire")
	}
}
