// Package sim is a deterministic discrete-event simulator for geo-
// replicated deployments: replicas exchange messages over links whose
// latency comes from the topology's RTT matrix (one-way = RTT/2), closed-
// loop clients submit commands at their local site, and per-process CPU
// and NIC queueing models reproduce the saturation behaviour the paper
// measures on a physical cluster.
//
// With the cost model disabled the simulator matches the paper's own
// simulator mode ("the observed client latency ... when CPU and network
// bottlenecks are disregarded"); with it enabled, leader NIC saturation
// (FPaxos, Figure 7/8) and single-threaded dependency-graph execution
// bottlenecks (Atlas/EPaxos/Janus*, Figures 7/9) emerge from the queues.
package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"tempo/internal/depgraph"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// CostModel is the per-process CPU and NIC model. Zero values mean
// "free"/"infinite".
type CostModel struct {
	// PerMsg is the CPU service time charged per handled message.
	PerMsg time.Duration
	// PerByte is the CPU time charged per message byte (marshaling).
	PerByte time.Duration
	// PerSend is the CPU time charged to the sender per destination copy
	// (serialization and syscall work); it is what makes broadcast-heavy
	// leaders a bottleneck.
	PerSend time.Duration
	// PerExec is the CPU time charged per executed command.
	PerExec time.Duration
	// PerGraphNode is the execution-thread time charged, per executed
	// batch, for each command pending in the replica's dependency graph —
	// it models the single-threaded SCC re-traversal of EPaxos-style
	// executors (the paper's Atlas/Janus execution bottleneck).
	PerGraphNode time.Duration
	// NICBytesPerSec is the outgoing bandwidth per process; each
	// destination copy of a broadcast is serialized separately.
	NICBytesPerSec float64
}

func (c *CostModel) msgCost(size int) time.Duration {
	if c == nil {
		return 0
	}
	return c.PerMsg + time.Duration(size)*c.PerByte
}

// execCost is the execution-thread service time for a batch of n
// executed commands with graphPending commands still blocked in the
// dependency graph (0 for protocols without one).
func (c *CostModel) execCost(n, graphPending int) time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(n)*c.PerExec + time.Duration(graphPending)*c.PerGraphNode
}

func (c *CostModel) sendCost(size int) time.Duration {
	if c == nil {
		return 0
	}
	return c.PerSend + time.Duration(size)*c.PerByte/2
}

func (c *CostModel) txTime(size int) time.Duration {
	if c == nil || c.NICBytesPerSec == 0 {
		return 0
	}
	return time.Duration(float64(size) / c.NICBytesPerSec * float64(time.Second))
}

// graphHolder lets the cost model observe dependency-graph backlog.
type graphHolder interface{ Graph() *depgraph.Graph }

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface: events fire in (time, insertion) order.
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// node wraps one replica with its queueing state.
type node struct {
	rep proto.Replica

	cpuBusyUntil  time.Duration
	cpuBusy       time.Duration
	execBusyUntil time.Duration
	execBusy      time.Duration
	nicBusyUntil  time.Duration
	nicBusy       time.Duration
	bytesOut      uint64
	bytesIn       uint64
}

// Sim is a single simulation run.
type Sim struct {
	topo  *topology.Topology
	cost  *CostModel
	rng   *rand.Rand
	nodes map[ids.ProcessID]*node

	heap   eventHeap
	seq    uint64
	now    time.Duration
	endAt  time.Duration
	jitter float64

	onExecuted func(at time.Duration, p ids.ProcessID, ex []proto.Executed)
}

// New creates a simulation over the topology with one replica per
// process (built by newReplica).
func New(topo *topology.Topology, newReplica func(ids.ProcessID) proto.Replica, cost *CostModel, seed int64) *Sim {
	s := &Sim{
		topo:   topo,
		cost:   cost,
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[ids.ProcessID]*node),
		jitter: 0.01,
	}
	for _, pi := range topo.Processes() {
		s.nodes[pi.ID] = &node{rep: newReplica(pi.ID)}
	}
	return s
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Replica returns the replica for a process.
func (s *Sim) Replica(id ids.ProcessID) proto.Replica { return s.nodes[id].rep }

// SetExecutedHook registers the callback invoked whenever a replica
// executes commands (the runner uses it for client completion).
func (s *Sim) SetExecutedHook(fn func(at time.Duration, p ids.ProcessID, ex []proto.Executed)) {
	s.onExecuted = fn
}

// schedule enqueues fn at time at.
func (s *Sim) schedule(at time.Duration, fn func()) {
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, fn: fn})
}

// Submit injects a client command at process p at the current time,
// charging the replica's CPU like a message arrival.
func (s *Sim) Submit(p ids.ProcessID, submit func(proto.Replica) []proto.Action) {
	n := s.nodes[p]
	start := s.now
	if n.cpuBusyUntil > start {
		start = n.cpuBusyUntil
	}
	svc := s.cost.msgCost(64)
	n.cpuBusyUntil = start + svc
	n.cpuBusy += svc
	s.schedule(start+svc, func() {
		acts := submit(n.rep)
		s.dispatch(p, acts)
		s.drainExecuted(p, n)
	})
}

func (s *Sim) graphPending(n *node) int {
	if s.cost == nil || s.cost.PerGraphNode == 0 {
		return 0
	}
	if gh, ok := n.rep.(graphHolder); ok {
		return gh.Graph().Pending()
	}
	return 0
}

// dispatch sends actions from process p at the current event time,
// applying the NIC model.
func (s *Sim) dispatch(p ids.ProcessID, acts []proto.Action) {
	n := s.nodes[p]
	for _, a := range acts {
		size := a.Msg.Size()
		for _, to := range a.To {
			if to == p {
				continue // protocols deliver self-messages internally
			}
			if sc := s.cost.sendCost(size); sc > 0 {
				n.cpuBusyUntil += sc
				n.cpuBusy += sc
			}
			tx := s.cost.txTime(size)
			depart := s.now
			if n.nicBusyUntil > depart {
				depart = n.nicBusyUntil
			}
			depart += tx
			n.nicBusyUntil = depart
			n.nicBusy += tx
			n.bytesOut += uint64(size)

			oneway := s.topo.RTT(p, to) / 2
			if s.jitter > 0 && oneway > 0 {
				oneway += time.Duration(s.rng.Float64() * s.jitter * float64(oneway))
			}
			s.deliver(p, to, a.Msg, depart+oneway)
		}
	}
}

// deliver schedules the CPU-queued handling of msg at dst.
func (s *Sim) deliver(from, to ids.ProcessID, msg proto.Message, arrive time.Duration) {
	s.schedule(arrive, func() {
		dst := s.nodes[to]
		dst.bytesIn += uint64(msg.Size())
		start := s.now
		if dst.cpuBusyUntil > start {
			start = dst.cpuBusyUntil
		}
		svc := s.cost.msgCost(msg.Size())
		dst.cpuBusyUntil = start + svc
		dst.cpuBusy += svc
		s.schedule(start+svc, func() {
			acts := dst.rep.Handle(from, msg)
			s.dispatch(to, acts)
			s.drainExecuted(to, dst)
		})
	})
}

// drainExecuted routes executed commands through the process's execution
// server — a second, independent queueing station modelling the
// single-threaded executor of the real systems — and reports completions
// when it finishes.
func (s *Sim) drainExecuted(p ids.ProcessID, n *node) {
	ex := n.rep.Drain()
	if len(ex) == 0 {
		return
	}
	svc := s.cost.execCost(len(ex), s.graphPending(n))
	if svc == 0 {
		if s.onExecuted != nil {
			s.onExecuted(s.now, p, ex)
		}
		return
	}
	start := s.now
	if n.execBusyUntil > start {
		start = n.execBusyUntil
	}
	n.execBusyUntil = start + svc
	n.execBusy += svc
	batch := ex
	s.schedule(start+svc, func() {
		if s.onExecuted != nil {
			s.onExecuted(s.now, p, batch)
		}
	})
}

// StartTicks schedules periodic Tick calls for every replica, in
// deterministic process order.
func (s *Sim) StartTicks(interval time.Duration) {
	for _, pi := range s.topo.Processes() {
		pid := pi.ID
		var tick func()
		tick = func() {
			n := s.nodes[pid]
			acts := n.rep.Tick(s.now)
			s.dispatch(pid, acts)
			s.drainExecuted(pid, n)
			if s.now < s.endAt {
				s.schedule(s.now+interval, tick)
			}
		}
		s.schedule(s.now+interval, tick)
	}
}

// Run processes events until the given end time (or until the event
// queue empties).
func (s *Sim) Run(until time.Duration) {
	s.endAt = until
	for len(s.heap) > 0 {
		ev := heap.Pop(&s.heap).(*event)
		if ev.at > until {
			return
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fn()
	}
}

// Utilization returns the peak CPU (protocol-handler thread), executor
// thread, and NIC utilization across processes, as fractions of capacity.
func (s *Sim) Utilization() (cpu, exec, nic float64) {
	if s.now == 0 {
		return 0, 0, 0
	}
	for _, n := range s.nodes {
		if c := float64(n.cpuBusy) / float64(s.now); c > cpu {
			cpu = c
		}
		if e := float64(n.execBusy) / float64(s.now); e > exec {
			exec = e
		}
		if u := float64(n.nicBusy) / float64(s.now); u > nic {
			nic = u
		}
	}
	return clamp1(cpu), clamp1(exec), clamp1(nic)
}

func clamp1(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// BytesOut returns the total bytes sent by a process.
func (s *Sim) BytesOut(p ids.ProcessID) uint64 { return s.nodes[p].bytesOut }
