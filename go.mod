module tempo

go 1.24
