// Package lockcheck implements the off-lock-execution analyzer: no
// blocking operation may be reachable while a //tempo:guard-annotated
// mutex is held.
//
// This machine-checks the contract established by the server's
// execution pipeline: protocol steps under n.mu only mutate protocol
// state and enqueue work; everything that can stall — network writes,
// fsyncs and WAL appends, channel sends, sleeps, waiter completion,
// state-machine applies — happens on dedicated goroutines outside the
// lock. Before this analyzer the contract lived in comments; now a
// violation is a build failure.
//
// Annotations:
//
//	//tempo:guard            on a mutex field or package var: protect
//	                         its critical sections from blocking calls
//	//tempo:blocks <reason>  on a function: treat calls to it as
//	                         blocking even if its body looks benign
//	                         (unbounded work, e.g. state-machine apply)
//	//tempo:allowblock <reason>
//	                         waiver: suppress the finding on this line
//	                         or the line below (e.g. a cap-1 channel
//	                         send that is claimed-once by construction)
//
// Blocking-ness is inferred transitively: a function whose body
// contains a blocking primitive (channel send/receive, select without
// default, time.Sleep, net/os/bufio write-path calls, sync.WaitGroup/
// Cond waits) — or a call to another blocking function — is itself
// blocking. The inference crosses package boundaries through analysis
// facts, so cluster code calling wal.(*Log).Append is flagged without
// any local annotation. Waived call sites do not propagate: waiving a
// provably-non-blocking send also declares the enclosing function
// non-blocking through that site.
//
// Limitations (deliberate, documented): the held-region tracking is
// syntactic and per-function — a Lock acquired inside a conditional is
// assumed released when the conditional exits, function literals that
// escape are not attributed to the region that created them, and defer
// ordering relative to a deferred Unlock is not modeled.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"tempo/tools/analyze/internal/directive"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "reports blocking operations reached while a //tempo:guard mutex is held",
	Run:       run,
	FactTypes: []analysis.Fact{(*blocksFact)(nil)},
}

// blocksFact marks a function as blocking; exported so callers in other
// packages inherit the classification.
type blocksFact struct {
	// Reason explains why the function blocks, chained through the
	// call graph ("calls (*Log).Append, which calls (*File).Sync").
	Reason string
}

// AFact implements analysis.Fact.
func (*blocksFact) AFact() {}

// String implements analysis.Fact diagnostics output.
func (f *blocksFact) String() string { return "blocks: " + f.Reason }

func run(pass *analysis.Pass) (interface{}, error) {
	// Analyze (and export facts for) module code only. The driver also
	// runs fact-exporting analyzers over every dependency, including the
	// standard library; inferring "blocks" through runtime internals
	// (every allocation can trigger a GC assist) would classify nearly
	// all code as blocking. Standard-library behavior comes from the
	// curated stdBlocking table instead.
	if pass.Module == nil || pass.Module.Path == "" || pass.Module.Path == "std" || pass.Module.Path == "cmd" {
		return nil, nil
	}
	c := &checker{
		pass:     pass,
		guarded:  make(map[types.Object]bool),
		blocking: make(map[*types.Func]string),
		bodies:   make(map[*types.Func]*ast.FuncDecl),
		waivers:  directive.NewWaivers(pass.Fset, "allowblock", pass.Files),
	}
	c.collectGuards()
	c.collectFuncs()
	c.infer()
	for fn, reason := range c.blocking {
		// The fact store rejects objects from other packages; inferred
		// functions are always package-local.
		f := &blocksFact{Reason: reason}
		pass.ExportObjectFact(fn, f)
	}
	c.checkHeldRegions()
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	guarded  map[types.Object]bool
	blocking map[*types.Func]string
	bodies   map[*types.Func]*ast.FuncDecl
	waivers  *directive.Waivers
}

// collectGuards finds //tempo:guard-annotated mutex fields and package
// vars and records their types.Objects.
func (c *checker) collectGuards() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.Field:
				if _, ok := directive.FromCommentGroups("guard", d.Doc, d.Comment); !ok {
					return true
				}
				for _, name := range d.Names {
					c.addGuard(name)
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					return true
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if _, ok := directive.FromCommentGroups("guard", d.Doc, vs.Doc, vs.Comment); !ok {
						continue
					}
					for _, name := range vs.Names {
						c.addGuard(name)
					}
				}
			}
			return true
		})
	}
}

func (c *checker) addGuard(name *ast.Ident) {
	obj := c.pass.TypesInfo.Defs[name]
	if obj == nil {
		return
	}
	if !isMutexType(obj.Type()) {
		c.pass.Reportf(name.Pos(), "//tempo:guard on %s, which is not a sync.Mutex or sync.RWMutex", name.Name)
		return
	}
	c.guarded[obj] = true
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectFuncs indexes function declarations and seeds the blocking set
// with //tempo:blocks annotations.
func (c *checker) collectFuncs() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.bodies[obj] = fd
			if reason, ok := blocksAnnotation(fd.Doc); ok {
				c.blocking[obj] = reason
			}
		}
		// Interface methods may be annotated too: dynamic calls resolve
		// to the interface method object, so a //tempo:blocks on the
		// declaration covers every implementation.
		ast.Inspect(file, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				reason, ok := blocksAnnotation(m.Doc)
				if !ok {
					continue
				}
				for _, name := range m.Names {
					if obj, ok := c.pass.TypesInfo.Defs[name].(*types.Func); ok {
						c.blocking[obj] = reason
					}
				}
			}
			return true
		})
	}
}

// blocksAnnotation extracts a //tempo:blocks directive from a doc
// comment, normalizing the reported reason.
func blocksAnnotation(doc *ast.CommentGroup) (string, bool) {
	d, ok := directive.FromCommentGroups("blocks", doc)
	if !ok {
		return "", false
	}
	if d.Args == "" {
		return "is annotated //tempo:blocks", true
	}
	return "is annotated //tempo:blocks (" + d.Args + ")", true
}

// infer runs the transitive blocking-function inference to a fixpoint.
func (c *checker) infer() {
	for changed := true; changed; {
		changed = false
		for fn, fd := range c.bodies {
			if _, done := c.blocking[fn]; done {
				continue
			}
			if reason, found := c.bodyBlocks(fd); found {
				c.blocking[fn] = reason
				changed = true
			}
		}
	}
}

// bodyBlocks reports whether fd's body contains a (non-waived) blocking
// occurrence under the walker's reachability rules.
func (c *checker) bodyBlocks(fd *ast.FuncDecl) (string, bool) {
	var reason string
	w := &walker{
		c: c,
		report: func(pos token.Pos, desc string) {
			if reason == "" {
				reason = desc
			}
		},
		always: true,
	}
	w.stmts(fd.Body.List, map[types.Object]token.Pos{})
	return reason, reason != ""
}

// checkHeldRegions reports blocking occurrences inside guarded critical
// sections.
func (c *checker) checkHeldRegions() {
	for _, fd := range c.bodies {
		w := &walker{c: c}
		w.report = func(pos token.Pos, desc string) {
			held := w.current
			var names []string
			for obj, lockPos := range held {
				names = append(names, fmt.Sprintf("%s (locked at %s)", obj.Name(), c.pass.Fset.Position(lockPos)))
			}
			sort.Strings(names)
			c.pass.Reportf(pos, "%s while //tempo:guard mutex %s is held", desc, strings.Join(names, ", "))
		}
		w.stmts(fd.Body.List, map[types.Object]token.Pos{})
	}
}

// blockingCall classifies a resolved callee as blocking, either via the
// built-in table of stdlib primitives, via a //tempo:blocks annotation
// or inference in this package, or via an imported fact.
func (c *checker) blockingCall(fn *types.Func) (string, bool) {
	if reason, ok := c.blocking[fn]; ok {
		return fmt.Sprintf("calls %s, which %s", fn.Name(), reason), true
	}
	var fact blocksFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fmt.Sprintf("calls %s.%s, which %s", fn.Pkg().Name(), fn.Name(), fact.Reason), true
	}
	if desc, ok := stdBlocking(fn); ok {
		return desc, true
	}
	return "", false
}

// stdBlocking is the built-in table of blocking stdlib calls: the
// write/fsync path (os, bufio), the network (net reads, writes and
// dials), sleeps, and sync waits.
func stdBlocking(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "time":
		if name == "Sleep" {
			return "calls time.Sleep", true
		}
	case "net":
		if name == "Read" || name == "Write" || strings.HasPrefix(name, "Dial") {
			return "calls net." + recvPrefix(fn) + name + ", which does network I/O", true
		}
	case "os":
		switch name {
		case "Sync":
			return "calls os." + recvPrefix(fn) + "Sync, which fsyncs", true
		case "Write", "WriteString", "WriteAt":
			return "calls os." + recvPrefix(fn) + name + ", which does file I/O", true
		}
	case "bufio":
		if recvNamed(fn) == "Writer" {
			switch name {
			case "Flush", "Write", "WriteString", "WriteByte", "WriteRune":
				return "calls bufio.(*Writer)." + name + ", which may flush to the underlying writer", true
			}
		}
	case "sync":
		if name == "Wait" && (recvNamed(fn) == "WaitGroup" || recvNamed(fn) == "Cond") {
			return "calls sync.(*" + recvNamed(fn) + ").Wait", true
		}
	}
	return "", false
}

// recvNamed returns the name of the method receiver's base type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func recvPrefix(fn *types.Func) string {
	if r := recvNamed(fn); r != "" {
		return "(" + r + ")."
	}
	return ""
}

// walker traverses one function body tracking which guarded mutexes are
// held, reporting blocking occurrences while any is. In `always` mode
// (inference) every statement is treated as guarded and lock-state
// changes are ignored.
type walker struct {
	c      *checker
	report func(pos token.Pos, desc string)
	always bool
	// current mirrors the held map of the most recent active() check so
	// the report callback can name the mutexes without threading the
	// map through every call.
	current map[types.Object]token.Pos
}

func (w *walker) active(held map[types.Object]token.Pos) bool {
	w.current = held
	return w.always || len(held) > 0
}

// stmts processes a statement list sequentially, threading lock-state
// through it. Compound statements recurse with a copy of the state so a
// branch-local Unlock (the `if cond { mu.Unlock(); return }` early-exit
// pattern) does not leak into the fall-through path.
func (w *walker) stmts(list []ast.Stmt, held map[types.Object]token.Pos) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

func (w *walker) stmt(st ast.Stmt, held map[types.Object]token.Pos) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if obj, op := w.lockOp(s.X); obj != nil {
			if w.always {
				return
			}
			switch op {
			case "Lock", "RLock":
				held[obj] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, obj)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if obj, op := w.lockOp(s.Call); obj != nil && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: the mutex stays held for the remainder of
			// the function, which the sequential walk already models.
			return
		}
		// The call's function and arguments are evaluated now; the call
		// itself runs at return time, outside the scanned region.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.GoStmt:
		// Argument evaluation is synchronous; the callee runs on its own
		// goroutine, off this critical section.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		if w.active(held) && !w.waived(s.Arrow) {
			w.report(s.Arrow, "sends on a channel")
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if w.active(held) && isChanType(w.c.pass.TypesInfo.TypeOf(s.X)) && !w.waived(s.For) {
			w.report(s.For, "ranges over a channel (blocking receive)")
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					w.expr(e, held)
				}
				w.stmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				w.stmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && w.active(held) && !w.waived(s.Pos()) {
			w.report(s.Pos(), "selects without a default case (blocks until a channel is ready)")
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				// The comm clauses themselves are non-blocking once the
				// select has chosen; only their bodies are scanned.
				w.stmts(cl.Body, copyHeld(held))
			}
		}
	}
}

// expr scans one expression for blocking occurrences. Function literals
// are only entered when immediately invoked; an escaping literal runs
// in some other region.
func (w *walker) expr(e ast.Expr, held map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && w.active(held) && !w.waived(x.OpPos) {
				w.report(x.OpPos, "receives from a channel")
			}
		case *ast.CallExpr:
			if fl, ok := x.Fun.(*ast.FuncLit); ok {
				w.stmts(fl.Body.List, copyHeld(held))
				for _, a := range x.Args {
					w.expr(a, held)
				}
				return false
			}
			if !w.active(held) {
				return true
			}
			if fn := typeutil.StaticCallee(w.c.pass.TypesInfo, x); fn != nil {
				if desc, ok := w.c.blockingCall(fn); ok && !w.waived(x.Pos()) {
					w.report(x.Pos(), desc)
				}
			} else if fn := interfaceCallee(w.c.pass.TypesInfo, x); fn != nil {
				if desc, ok := w.c.blockingCall(fn); ok && !w.waived(x.Pos()) {
					w.report(x.Pos(), desc)
				}
			}
		}
		return true
	})
}

// interfaceCallee resolves a dynamic method call to its interface
// method object (StaticCallee returns nil for those); the stdlib table
// matches net.Conn's Read/Write through it.
func interfaceCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// lockOp recognizes `<guarded>.Lock()` / `.Unlock()` (and RW variants)
// and returns the guarded mutex object and the operation name.
func (w *walker) lockOp(e ast.Expr) (types.Object, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	var obj types.Object
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		obj = w.c.pass.TypesInfo.Uses[x.Sel]
	case *ast.Ident:
		obj = w.c.pass.TypesInfo.Uses[x]
	}
	if obj == nil || !w.c.guarded[obj] {
		return nil, ""
	}
	return obj, op
}

func (w *walker) waived(pos token.Pos) bool {
	return w.c.waivers.Covers(w.c.pass.Fset, pos)
}

func copyHeld(held map[types.Object]token.Pos) map[types.Object]token.Pos {
	cp := make(map[types.Object]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
