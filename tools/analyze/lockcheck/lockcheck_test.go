package lockcheck_test

import (
	"testing"

	"tempo/tools/analyze/internal/antest"
	"tempo/tools/analyze/lockcheck"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, "testdata", lockcheck.Analyzer)
}
