// Package fixture exercises lockcheck: blocking operations under a
// //tempo:guard mutex are findings; off-lock, waived, select-default
// and goroutine-spawn paths are not.
package fixture

import (
	"bufio"
	"os"
	"sync"
	"time"
)

type node struct {
	//tempo:guard
	mu sync.Mutex
	// plain is not guarded: blocking under it is fine.
	plain sync.Mutex

	ch   chan int
	kick chan struct{}
	f    *os.File
	bw   *bufio.Writer
}

func (n *node) sendUnderLock() {
	n.mu.Lock()
	n.ch <- 1 // want "sends on a channel"
	n.mu.Unlock()
}

func (n *node) sleepUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	time.Sleep(time.Millisecond) // want "calls time.Sleep"
}

func (n *node) recvUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	<-n.ch // want "receives from a channel"
}

func (n *node) fsyncUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.f.Sync() // want "fsyncs"
}

func (n *node) flushUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bw.Flush() // want "may flush"
}

func (n *node) sendAfterUnlock() {
	n.mu.Lock()
	n.mu.Unlock()
	n.ch <- 1 // ok: lock released
}

func (n *node) sendUnderPlainLock() {
	n.plain.Lock()
	n.ch <- 1 // ok: plain is not a guarded mutex
	n.plain.Unlock()
}

func (n *node) nonBlockingKick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // ok: select with default never blocks
	case n.kick <- struct{}{}:
	default:
	}
}

func (n *node) blockingSelect() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want "selects without a default"
	case n.kick <- struct{}{}:
	case v := <-n.ch:
		_ = v
	}
}

func (n *node) spawnUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.ch <- 1 // ok: runs on its own goroutine, off the lock
	}()
}

func (n *node) earlyExitUnlock(cond bool) {
	n.mu.Lock()
	if cond {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.ch <- 1 // ok: both paths released the lock
}

func (n *node) waivedSend() {
	n.mu.Lock()
	defer n.mu.Unlock()
	//tempo:allowblock cap-1 channel, claimed exactly once
	n.ch <- 1 // ok: waived with a reason
}

// flushDisk is not annotated; lockcheck infers it blocks because its
// body fsyncs.
func (n *node) flushDisk() {
	n.f.Sync()
}

func (n *node) transitiveUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flushDisk() // want "calls flushDisk, which calls os"
}

//tempo:blocks state-machine apply is unbounded work
func (n *node) apply() {}

func (n *node) annotatedUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.apply() // want "annotated //tempo:blocks"
}

func (n *node) applyOffLock() {
	n.apply() // ok: no guarded mutex held
}

func (n *node) immediateClosure() {
	n.mu.Lock()
	defer n.mu.Unlock()
	func() {
		n.ch <- 1 // want "sends on a channel"
	}()
}

func (n *node) escapingClosure() []func() {
	n.mu.Lock()
	defer n.mu.Unlock()
	return []func(){func() {
		n.ch <- 1 // ok: literal escapes; it runs in some other region
	}}
}

func (n *node) rangeOverChannel() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for v := range n.ch { // want "ranges over a channel"
		_ = v
	}
}

// store abstracts a state machine; the interface method carries the
// annotation, so every dynamic call through it is blocking.
type store interface {
	//tempo:blocks serializes the full state machine
	snapshotTo(buf []byte) error
}

func (n *node) snapshotUnderLock(st store) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st.snapshotTo(nil) // want "annotated //tempo:blocks"
}

func (n *node) snapshotOffLock(st store) {
	st.snapshotTo(nil) // ok: no guarded mutex held
}
