package ctxcheck_test

import (
	"testing"

	"tempo/tools/analyze/ctxcheck"
	"tempo/tools/analyze/internal/antest"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, "testdata", ctxcheck.Analyzer)
}
