// Package fixture exercises ctxcheck: fresh root contexts and
// undeadlined dials in library code are findings; waivers and
// ctx-threading are not.
package fixture

import (
	"context"
	"time"
)

func freshRoot() {
	ctx := context.Background() // want "detaches this call tree"
	_ = ctx
}

func freshTODO() {
	_ = context.TODO() // want "detaches this call tree"
}

func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // ok: derives from the caller
}

func waivedRoot() context.Context {
	//tempo:allowctx process-lifetime supervisor goroutine
	return context.Background() // ok: waived with a reason
}
