package fixture

import (
	"net"
	"time"
)

func dialNoDeadline(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "no deadline"
}

func dialBounded(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second) // ok: bounded
}
