// Package ctxcheck implements the deadline-propagation analyzer:
// library packages must not mint fresh root contexts or dial without a
// deadline.
//
// The PR 2 client redesign made "the caller's context is the deadline"
// a load-bearing contract: every client call takes a ctx, the deadline
// rides the wire, and the server sweeps expired waiters against it. A
// stray context.Background() inside the library quietly detaches a
// subtree from that contract — the operation can no longer be
// cancelled and its deadline never propagates. ctxcheck forbids it
// where it matters.
//
// Rules, applied only in library packages (by default anything under
// the module that is not package main, not a _test.go file, and not an
// internal benchmark/simulation harness — see -ctxcheck.exclude):
//
//   - calls to context.Background() or context.TODO() are flagged
//   - calls to net.Dial are flagged (use net.DialTimeout, a net.Dialer
//     with a deadline, or DialContext: an undeadlined dial can hang a
//     library call forever)
//
// //tempo:allowctx <reason> on the line (or the line above) waives one
// finding — e.g. a long-lived background goroutine whose lifetime is
// genuinely process-scoped, where a root context is the honest choice.
package ctxcheck

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"

	"tempo/tools/analyze/internal/directive"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "forbids context.Background/TODO and undeadlined dials in library packages",
	Run:  run,
}

// exclude is the package-path pattern exempt from the rules: binaries'
// support harnesses that legitimately own root contexts. Overridable
// for the fixture suite and for future layout changes.
var exclude = regexp.MustCompile(`(^|/)(cmd|bench|sim|chaos|vulture|testnet|examples|workload)(/|$)`)

func init() {
	Analyzer.Flags.Func("exclude", "regexp of package paths exempt from ctxcheck", func(s string) error {
		re, err := regexp.Compile(s)
		if err != nil {
			return err
		}
		exclude = re
		return nil
	})
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" || exclude.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	waivers := directive.NewWaivers(pass.Fset, "allowctx", pass.Files)
	for _, file := range pass.Files {
		if directive.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := selPkgPath(pass, sel)
			switch {
			case pkgPath == "context" && (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO"):
				if !waivers.Covers(pass.Fset, call.Pos()) {
					pass.Reportf(call.Pos(), "context.%s() in library code detaches this call tree from the caller's deadline; take a ctx parameter (or waive with //tempo:allowctx <reason>)", sel.Sel.Name)
				}
			case pkgPath == "net" && sel.Sel.Name == "Dial":
				if !waivers.Covers(pass.Fset, call.Pos()) {
					pass.Reportf(call.Pos(), "net.Dial has no deadline and can hang a library call forever; use net.DialTimeout or a net.Dialer bound to the caller's ctx")
				}
			}
			return true
		})
	}
	return nil, nil
}

// selPkgPath returns the import path of the package a selector's base
// identifier names, or "".
func selPkgPath(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
