// Command analyze is the repository's invariant multichecker: the five
// repo-specific passes (lockcheck, wirecheck, noalloc, ctxcheck,
// doccheck) plus a curated set of standard golang.org/x/tools passes,
// built as a unitchecker-based vet tool.
//
// Run it through the go command, which drives it per package and feeds
// it type information and cross-package analysis facts:
//
//	go build -o bin/analyze ./tools/analyze
//	go vet -vettool=bin/analyze ./...
//
// `make lint` does exactly that. A single pass can be selected the same
// way vet selects passes: `go vet -vettool=bin/analyze -doccheck ./...`
// (that is what `make doc-check` aliases to).
//
// The standard-pass curation note: nilness and unusedwrite from the
// issue's wishlist are SSA-based and live outside the subset of
// x/tools vendored from the Go toolchain (this container has no module
// proxy access, see vendor/modules.txt); unreachable, nilfunc and
// copylock cover the nearest equivalents on AST+CFG. The custom passes
// are pure go/ast + go/types and carry the repo's actual contracts.
package main

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"tempo/tools/analyze/ctxcheck"
	"tempo/tools/analyze/doccheck"
	"tempo/tools/analyze/lockcheck"
	"tempo/tools/analyze/noalloc"
	"tempo/tools/analyze/wirecheck"
)

// Analyzers returns the full suite: repo-specific contract passes
// first, then the curated standard passes.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		// Repo contracts.
		lockcheck.Analyzer,
		wirecheck.Analyzer,
		noalloc.Analyzer,
		ctxcheck.Analyzer,
		doccheck.Analyzer,
		// Curated standard passes.
		atomic.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		errorsas.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		sigchanyzer.Analyzer,
		stringintconv.Analyzer,
		unreachable.Analyzer,
		unusedresult.Analyzer,
	}
}

func main() {
	unitchecker.Main(Analyzers()...)
}
