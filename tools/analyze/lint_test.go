package main_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestLintAtHead builds the analyzer binary and runs the whole suite
// over the module, the same way `make lint` does. The tree must stay
// lint-clean: a diagnostic anywhere (a blocking call under a
// //tempo:guard mutex, a codec field the decoder forgot, an allocation
// on a //tempo:noalloc path, a missing doc comment) fails this test.
func TestLintAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-tree lint")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "analyze")

	build := exec.Command("go", "build", "-o", bin, "./tools/analyze")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./tools/analyze: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("lint found diagnostics at HEAD: %v\n%s", err, out)
	}
}
