// Package fixture exercises noalloc: per-call allocations inside
// //tempo:noalloc functions are findings; the append-into-caller-buffer
// idiom and waived sites are not.
package fixture

import "fmt"

type point struct{ x, y int }

type sink interface{ consume() }

func (point) consume() {}

//tempo:noalloc
func appendPoint(buf []byte, p point) []byte {
	buf = append(buf, byte(p.x)) // ok: appends into the caller's buffer
	buf = append(buf, byte(p.y))
	return buf
}

//tempo:noalloc
func localAppend(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		out = append(out, byte(i)) // want "append into a non-parameter slice"
	}
	return out
}

//tempo:noalloc
func heapLiteral() *point {
	return &point{1, 2} // want "composite literal allocates"
}

//tempo:noalloc
func sliceLiteral() {
	_ = []int{1, 2, 3} // want "slice literal allocates"
}

//tempo:noalloc
func mapMaker() {
	_ = map[string]int{}     // want "map literal allocates"
	_ = make(map[string]int) // want "make allocates"
}

//tempo:noalloc
func newMaker() *point {
	return new(point) // want "new allocates"
}

//tempo:noalloc
func formatter(v int) string {
	return fmt.Sprintf("%d", v) // want "fmt.Sprintf allocates"
}

//tempo:noalloc
func stringConv(b []byte, s string) {
	_ = string(b) // want "conversion allocates"
	_ = []byte(s) // want "conversion allocates"
}

//tempo:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

const prefix = "p"

//tempo:noalloc
func constConcat() string {
	return prefix + "q" // ok: constant-folded at compile time
}

//tempo:noalloc
func closureCapture(n int) func() int {
	return func() int { return n } // want "closure captures"
}

//tempo:noalloc
func closureStatic() func() int {
	return func() int { return 42 } // ok: captures nothing
}

//tempo:noalloc
func boxes(p point) {
	var s sink
	takeSink(s)
	takeSink(p) // want "boxes"
}

//tempo:noalloc
func pointerNoBox(p *point) {
	takeAny(p) // ok: pointer-shaped, no heap copy on conversion
}

func takeSink(s sink) { _ = s }

func takeAny(v interface{}) { _ = v }

//tempo:noalloc
func waived() *point {
	//tempo:allowalloc corrupt-input error path only
	return &point{3, 4} // ok: waived with a reason
}

// notAnnotated may allocate freely.
func notAnnotated() *point {
	return &point{5, 6} // ok: not a //tempo:noalloc function
}
