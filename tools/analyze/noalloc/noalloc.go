// Package noalloc implements the hot-path allocation analyzer: a
// //tempo:noalloc-annotated function must not contain constructs that
// allocate on every call.
//
// The repo's encode paths (proto primitives, the per-message
// AppendBinary family, command payload appends, client frame builders)
// are benchmarked at zero allocations per op; that property is the
// backbone of the PR 1 codec numbers and regresses silently when
// someone adds an fmt.Errorf or a fresh map to the path. noalloc makes
// the property declarative.
//
// Flagged inside an annotated function:
//
//   - &T{...}, new(T): heap-candidate pointer construction
//   - slice and map composite literals
//   - make() of any kind (maps, chans, slices)
//   - calls into fmt (every fmt call allocates)
//   - string(b)/[]byte(s) conversions and non-constant string
//     concatenation
//   - function literals that capture enclosing variables (closure
//     allocation)
//   - append whose destination does not originate from a parameter or
//     receiver (append into a caller-provided buffer is the amortized
//     zero-alloc idiom; append into a locally-minted slice is an
//     unbounded allocation)
//   - implicit conversion of a non-pointer value to an interface type
//     in call arguments (boxing)
//
// //tempo:allowalloc <reason> on the line (or the line above) waives
// one finding — e.g. an error path that allocates only when the input
// is corrupt. The analyzer checks syntax, not escape analysis: keeping
// the benchmarks' allocs/op assertions alongside it is what proves the
// property end to end; this pass catches the regression at compile
// time instead of at benchmark time.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"tempo/tools/analyze/internal/directive"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reports per-call allocations inside //tempo:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	waivers := directive.NewWaivers(pass.Fset, "allowalloc", pass.Files)
	for _, file := range pass.Files {
		if directive.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := directive.FromCommentGroups("noalloc", fd.Doc); !ok {
				continue
			}
			c := &checker{pass: pass, waivers: waivers, fn: fd}
			c.check()
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	waivers *directive.Waivers
	fn      *ast.FuncDecl
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.waivers.Covers(c.pass.Fset, pos) {
		return
	}
	c.pass.Reportf(pos, "//tempo:noalloc %s: "+format, append([]interface{}{c.fn.Name.Name}, args...)...)
}

// paramObjs collects the function's parameters and receiver; append
// into slices rooted in these is the caller-buffer idiom and allowed.
func (c *checker) paramObjs() map[types.Object]bool {
	objs := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := c.pass.TypesInfo.Defs[n]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	add(c.fn.Recv)
	add(c.fn.Type.Params)
	return objs
}

func (c *checker) check() {
	params := c.paramObjs()
	// allowedSlices tracks locals assigned from parameter-rooted
	// append chains (`buf = append(buf, ...)`; `out := appendX(buf)`).
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if c.captures(x) {
				c.reportf(x.Pos(), "closure captures enclosing variables (allocates)")
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					c.reportf(x.Pos(), "&composite literal allocates")
					return false
				}
			}
		case *ast.CompositeLit:
			switch c.litKind(x) {
			case "slice":
				c.reportf(x.Pos(), "slice literal allocates")
			case "map":
				c.reportf(x.Pos(), "map literal allocates")
			}
		case *ast.CallExpr:
			c.call(x, params)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(c.pass.TypesInfo.TypeOf(x)) && !isConstExpr(c.pass.TypesInfo, x) {
				c.reportf(x.Pos(), "non-constant string concatenation allocates")
			}
		}
		return true
	})
}

func (c *checker) litKind(x *ast.CompositeLit) string {
	t := c.pass.TypesInfo.TypeOf(x)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return ""
}

func (c *checker) call(x *ast.CallExpr, params map[types.Object]bool) {
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		if _, isBuiltin := c.pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make":
				c.reportf(x.Pos(), "make allocates")
			case "new":
				c.reportf(x.Pos(), "new allocates")
			case "append":
				c.appendCall(x, params)
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				c.reportf(x.Pos(), "fmt.%s allocates", fun.Sel.Name)
				return
			}
		}
	}
	// Conversions string<->[]byte.
	if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
		to := tv.Type
		from := c.pass.TypesInfo.TypeOf(x.Args[0])
		if isStringType(to) && isByteSlice(from) && !c.waivers.Covers(c.pass.Fset, x.Pos()) {
			c.reportf(x.Pos(), "string([]byte) conversion allocates")
		}
		if isByteSlice(to) && isStringType(from) {
			c.reportf(x.Pos(), "[]byte(string) conversion allocates")
		}
		return
	}
	// Interface boxing in arguments.
	sig, _ := c.pass.TypesInfo.TypeOf(x.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range x.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(c.pass.TypesInfo, arg) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointer-shaped: interface conversion without heap copy
		}
		c.reportf(arg.Pos(), "passing %s as interface %s boxes (allocates)", at, pt)
	}
}

// appendCall flags appends whose destination slice is not rooted in a
// parameter or receiver.
func (c *checker) appendCall(x *ast.CallExpr, params map[types.Object]bool) {
	if len(x.Args) == 0 {
		return
	}
	root := rootIdent(x.Args[0])
	if root != nil {
		if obj := c.pass.TypesInfo.Uses[root]; obj != nil && params[obj] {
			return
		}
	}
	c.reportf(x.Pos(), "append into a non-parameter slice may grow (allocates); thread a caller buffer instead")
}

// rootIdent walks selector/index/slice expressions to the base ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// captures reports whether the literal references any object declared
// outside itself but inside the enclosing function.
func (c *checker) captures(fl *ast.FuncLit) bool {
	inner := make(map[types.Object]bool)
	ast.Inspect(fl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil || inner[obj] {
			return true
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			// Declared within the enclosing function (parameters,
			// receiver or body locals)?
			if c.fn.Pos() <= v.Pos() && v.Pos() < c.fn.End() {
				found = true
			}
		}
		return true
	})
	return found
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
