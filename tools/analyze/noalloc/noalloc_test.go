package noalloc_test

import (
	"testing"

	"tempo/tools/analyze/internal/antest"
	"tempo/tools/analyze/noalloc"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, "testdata", noalloc.Analyzer)
}
