package wirecheck_test

import (
	"testing"

	"tempo/tools/analyze/internal/antest"
	"tempo/tools/analyze/wirecheck"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, "testdata", wirecheck.Analyzer)
}
