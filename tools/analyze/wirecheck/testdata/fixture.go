// Package fixture exercises wirecheck: every field of a //tempo:wire
// struct must be covered by the encoder/decoder pair; a field added to
// the struct but missing from the decoder is the canonical finding.
package fixture

// appendUvarint stands in for the proto primitives.
func appendUvarint(buf []byte, v uint64) []byte { return append(buf, byte(v)) }

func readUvarint(b []byte) (uint64, []byte, error) { return uint64(b[0]), b[1:], nil }

// Good is fully covered: both fields written and read.
//
//tempo:wire
type Good struct {
	A uint64
	B uint64
}

// AppendBinary encodes Good.
func (m *Good) AppendBinary(buf []byte) []byte {
	buf = appendUvarint(buf, m.A)
	return appendUvarint(buf, m.B)
}

func decodeGood(b []byte) (*Good, []byte, error) {
	m := &Good{}
	var err error
	if m.A, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	if m.B, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// Drifted grew a field C that the decoder never reads: the silent
// corruption wirecheck exists to catch.
//
//tempo:wire
type Drifted struct {
	A uint64
	C uint64 // want `field Drifted.C is not read by decoder decodeDrifted`
}

// AppendBinary encodes Drifted, including C.
func (m *Drifted) AppendBinary(buf []byte) []byte {
	buf = appendUvarint(buf, m.A)
	return appendUvarint(buf, m.C)
}

func decodeDrifted(b []byte) (*Drifted, []byte, error) {
	m := &Drifted{}
	var err error
	if m.A, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// HalfWritten has a field the encoder skips.
//
//tempo:wire
type HalfWritten struct {
	A uint64
	D uint64 // want `field HalfWritten.D is not written by encoder HalfWritten.AppendBinary`
}

// AppendBinary encodes HalfWritten but forgets D.
func (m *HalfWritten) AppendBinary(buf []byte) []byte {
	return appendUvarint(buf, m.A)
}

func decodeHalfWritten(b []byte) (*HalfWritten, []byte, error) {
	var a, d uint64
	var err error
	if a, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	if d, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	return &HalfWritten{A: a, D: d}, b, nil // composite-literal keys count as reads
}

// Skipped has a derived field that deliberately does not travel.
//
//tempo:wire
type Skipped struct {
	A uint64
	//tempo:wire-skip
	cache uint64
}

// AppendBinary encodes Skipped.
func (m *Skipped) AppendBinary(buf []byte) []byte { return appendUvarint(buf, m.A) }

func decodeSkipped(b []byte) (*Skipped, []byte, error) {
	m := &Skipped{}
	var err error
	m.A, b, err = readUvarint(b)
	return m, b, err
}

// Explicit uses explicitly named codec functions.
//
//tempo:wire encode=AppendExplicit decode=ParseExplicit
type Explicit struct {
	A uint64
	E uint64 // want `field Explicit.E is not read by decoder ParseExplicit`
}

// AppendExplicit encodes Explicit.
func AppendExplicit(buf []byte, m *Explicit) []byte {
	buf = appendUvarint(buf, m.A)
	return appendUvarint(buf, m.E)
}

// ParseExplicit decodes Explicit but forgets E.
func ParseExplicit(b []byte) (Explicit, []byte, error) {
	var m Explicit
	var err error
	m.A, b, err = readUvarint(b)
	return m, b, err
}

// DecodeOnly is built by loose-parameter encoders (the psmr v2 frame
// style); only the decoder side is checkable.
//
//tempo:wire encode=- decode=DecodeDecodeOnly
type DecodeOnly struct {
	A uint64
	F uint64 // want `field DecodeOnly.F is not read by decoder DecodeDecodeOnly`
}

// DecodeDecodeOnly decodes DecodeOnly but forgets F.
func DecodeDecodeOnly(b []byte) (DecodeOnly, []byte, error) {
	var m DecodeOnly
	var err error
	m.A, b, err = readUvarint(b)
	return m, b, err
}

// Orphan has no codec at all.
//
//tempo:wire
type Orphan struct { // want `struct Orphan has no encoder Orphan.AppendBinary` `struct Orphan has no decoder decodeOrphan`
	A uint64
}
