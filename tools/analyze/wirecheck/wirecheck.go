// Package wirecheck implements the codec-coverage analyzer: every
// field of a //tempo:wire-annotated struct must be written by its
// hand-rolled encoder and read by its hand-rolled decoder.
//
// The repo's wire formats (internal/proto frames, internal/tempo
// protocol messages, internal/command payloads, the psmr v2 client
// frames) are hand-written append/decode pairs for zero-alloc
// encoding. The failure mode is silent: add a field to a message
// struct, forget one side of the codec, and the field is zeroed or
// garbage on the far side with no error anywhere. wirecheck turns that
// drift into a build failure.
//
// Annotations, on the struct type declaration:
//
//	//tempo:wire                        use the default pair: method
//	                                    AppendBinary (encoder) and
//	                                    function decode<Type> or
//	                                    Decode<Type> (decoder)
//	//tempo:wire encode=F decode=G      explicit function names
//	//tempo:wire encode=-               waive the encoder side (e.g. a
//	                                    request struct whose encoders
//	                                    write loose parameters); the
//	                                    decoder side is still checked
//
// A field whose doc or line comment carries //tempo:wire-skip is
// exempt (derived or cache-only fields that deliberately do not travel).
//
// "Written by the encoder" and "read by the decoder" are approximated
// as: the function body mentions the field, either through a selector
// on a value of the struct type or as a composite-literal key. That is
// deliberately permissive — it cannot prove the bytes are in the right
// order — but it exactly catches the add-a-field-and-forget case, which
// is the one that happens.
package wirecheck

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"tempo/tools/analyze/internal/directive"
)

// Analyzer is the wirecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirecheck",
	Doc:  "checks that every field of a //tempo:wire struct is covered by its encoder and decoder",
	Run:  run,
}

type wireStruct struct {
	name    *ast.Ident
	st      *ast.StructType
	obj     types.Object // the type name object
	encode  string       // "-" to waive
	decode  string
	skipped map[string]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	var targets []*wireStruct
	// funcs indexes every declared function body by name; methods are
	// indexed as "Recv.Name".
	funcs := make(map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		if directive.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				funcs[funcKey(d)] = d
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					dir, ok := directive.FromCommentGroups("wire", d.Doc, ts.Doc, ts.Comment)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						pass.Reportf(ts.Pos(), "//tempo:wire on %s, which is not a struct type", ts.Name.Name)
						continue
					}
					w := &wireStruct{
						name:    ts.Name,
						st:      st,
						obj:     pass.TypesInfo.Defs[ts.Name],
						skipped: make(map[string]bool),
					}
					kv := directive.KeyValues(dir.Args)
					w.encode = kv["encode"]
					w.decode = kv["decode"]
					targets = append(targets, w)
				}
			}
		}
	}
	for _, w := range targets {
		check(pass, w, funcs)
	}
	return nil, nil
}

func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// resolve finds the encoder or decoder declaration for a target, trying
// the explicit name, then the conventional candidates.
func resolve(w *wireStruct, funcs map[string]*ast.FuncDecl, explicit string, candidates []string) (*ast.FuncDecl, string) {
	if explicit != "" {
		// Explicit names may be plain functions or methods of the type.
		if fd, ok := funcs[explicit]; ok {
			return fd, explicit
		}
		if fd, ok := funcs[w.name.Name+"."+explicit]; ok {
			return fd, explicit
		}
		return nil, explicit
	}
	for _, cand := range candidates {
		if fd, ok := funcs[cand]; ok {
			return fd, cand
		}
	}
	return nil, candidates[0]
}

func check(pass *analysis.Pass, w *wireStruct, funcs map[string]*ast.FuncDecl) {
	if w.obj == nil {
		return
	}
	var fields []*ast.Ident
	for _, f := range w.st.Fields.List {
		if _, skip := directive.FromCommentGroups("wire-skip", f.Doc, f.Comment); skip {
			continue
		}
		for _, n := range f.Names {
			if n.Name == "_" {
				continue
			}
			fields = append(fields, n)
		}
		if len(f.Names) == 0 {
			// Embedded field: treat the type name as the field name.
			t := f.Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok {
				fields = append(fields, id)
			}
		}
	}
	sides := []struct {
		which      string
		explicit   string
		candidates []string
		verb       string
	}{
		{"encoder", w.encode, []string{w.name.Name + ".AppendBinary"}, "written"},
		{"decoder", w.decode, []string{"decode" + w.name.Name, "Decode" + w.name.Name}, "read"},
	}
	for _, side := range sides {
		if side.explicit == "-" {
			continue
		}
		fd, shown := resolve(w, funcs, side.explicit, side.candidates)
		if fd == nil {
			pass.Reportf(w.name.Pos(), "//tempo:wire struct %s has no %s %s in this package", w.name.Name, side.which, shown)
			continue
		}
		covered := fieldMentions(pass, fd, w.obj)
		for _, f := range fields {
			if !covered[f.Name] {
				pass.Reportf(f.Pos(), "field %s.%s is not %s by %s %s; update the codec or mark the field //tempo:wire-skip",
					w.name.Name, f.Name, side.verb, side.which, funcKey(fd))
			}
		}
	}
}

// fieldMentions returns the set of field names of struct type obj that
// fd's body mentions, via selector or composite-literal key.
func fieldMentions(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) map[string]bool {
	named, _ := obj.Type().(*types.Named)
	if named == nil {
		return nil
	}
	mentions := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if base := baseNamed(sel.Recv()); base != nil && base.Obj() == named.Obj() {
					mentions[x.Sel.Name] = true
				}
			}
		case *ast.CompositeLit:
			if base := baseNamed(pass.TypesInfo.TypeOf(x)); base != nil && base.Obj() == named.Obj() {
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							mentions[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return mentions
}

func baseNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n
}
