// Package doccheck implements the documentation-floor analyzer: every
// package carries a package comment and every exported top-level
// identifier carries a doc comment.
//
// This is the former standalone tools/doccheck binary folded into the
// multichecker so one binary and one CI job own all repo lint. The rule
// is deliberately presence-only (no style linting): the valuable
// invariant is that `go doc` never comes back empty for anything a
// reader can reach. Test files are exempt.
package doccheck

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"

	"tempo/tools/analyze/internal/directive"
)

// Analyzer is the doccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc:  "requires package comments and doc comments on all exported identifiers",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// go vet analyzes test variants of packages too (pkg.test mains and
	// external _test packages); the documentation floor applies only to
	// the shipped package proper.
	if strings.HasSuffix(pass.Pkg.Path(), ".test") || strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil, nil
	}
	hasPkgDoc := false
	var firstFile *ast.File
	for _, file := range pass.Files {
		if directive.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		if firstFile == nil {
			firstFile = file
		}
		if file.Doc != nil {
			hasPkgDoc = true
		}
		checkDecls(pass, file)
	}
	if firstFile != nil && !hasPkgDoc {
		pass.Reportf(firstFile.Package, "package %s has no package comment", pass.Pkg.Name())
	}
	return nil, nil
}

// isDocComment reports whether a trailing spec comment counts as
// documentation. Trailing comments do (go doc renders them for
// single-line specs) — except test-harness `// want` expectations,
// which annotate a line precisely because it is undocumented.
func isDocComment(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	return !strings.HasPrefix(cg.Text(), "want ")
}

func checkDecls(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				pass.Reportf(d.Pos(), "exported func %s has no doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && !isDocComment(s.Comment) {
						pass.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && !isDocComment(s.Comment) {
							pass.Reportf(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
}
