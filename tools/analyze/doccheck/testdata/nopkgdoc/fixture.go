package fixture // want "package fixture has no package comment"

// Exported is documented; only the package comment is missing.
func Exported() {}
