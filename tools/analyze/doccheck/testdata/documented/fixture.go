// Package fixture exercises doccheck: exported identifiers without doc
// comments are findings.
package fixture

// Documented carries a doc comment.
type Documented struct{}

type Undocumented struct{} // want "exported type Undocumented has no doc comment"

// DoThing is documented.
func DoThing() {}

func Naked() {} // want "exported func Naked has no doc comment"

// MaxThings is documented.
const MaxThings = 3

const MinThings = 1 // want "exported const MinThings has no doc comment"

// Registry is documented.
var Registry = map[string]int{}

var Fallback = 2 // want "exported var Fallback has no doc comment"

// unexported needs no doc comment.
func unexported() {}

type hidden struct{}

var _ = hidden{}

func init() { unexported() }
