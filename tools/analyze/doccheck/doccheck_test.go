package doccheck_test

import (
	"testing"

	"tempo/tools/analyze/doccheck"
	"tempo/tools/analyze/internal/antest"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, "testdata/documented", doccheck.Analyzer)
}

func TestMissingPackageComment(t *testing.T) {
	antest.Run(t, "testdata/nopkgdoc", doccheck.Analyzer)
}
