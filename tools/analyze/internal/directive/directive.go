// Package directive parses the repository's //tempo: analysis
// directives out of Go source comments.
//
// A directive is a single-line comment of the form
//
//	//tempo:NAME [arg ...]
//
// (no space between // and tempo:, mirroring //go: directives). The
// analyzers in tools/analyze use them two ways: contract annotations
// (//tempo:guard, //tempo:noalloc, //tempo:wire, //tempo:blocks)
// attach an invariant to a declaration, and waivers
// (//tempo:allowblock, //tempo:allowalloc, //tempo:allowctx) suppress a
// finding on the line they trail or the line directly below them, with
// a mandatory human-readable reason.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //tempo: comment.
type Directive struct {
	// Name is the directive name without the tempo: prefix
	// ("guard", "wire", "allowblock", ...).
	Name string
	// Args is the remainder of the line, space-trimmed ("encode=Foo
	// decode=Bar", or a waiver reason).
	Args string
	// Pos is the comment's position.
	Pos token.Pos
}

const prefix = "//tempo:"

// Parse returns the directive encoded in a single comment, if any.
func Parse(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	body := strings.TrimPrefix(c.Text, prefix)
	name, args, _ := strings.Cut(body, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// FromCommentGroups returns the first directive with the given name in
// any of the groups (a declaration's Doc and trailing Comment,
// typically).
func FromCommentGroups(name string, groups ...*ast.CommentGroup) (Directive, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := Parse(c); ok && d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// Waivers indexes waiver directives by file and line so analyzers can
// ask "is the finding at this position waived?" in O(1).
type Waivers struct {
	name  string
	lines map[*token.File]map[int]bool
}

// NewWaivers collects every //tempo:<name> directive in the files. A
// waiver covers findings on its own line (trailing comment) and on the
// line immediately below it (comment above the statement).
func NewWaivers(fset *token.FileSet, name string, files []*ast.File) *Waivers {
	w := &Waivers{name: name, lines: make(map[*token.File]map[int]bool)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := Parse(c)
				if !ok || d.Name != name {
					continue
				}
				tf := fset.File(c.Pos())
				if tf == nil {
					continue
				}
				m := w.lines[tf]
				if m == nil {
					m = make(map[int]bool)
					w.lines[tf] = m
				}
				line := tf.Line(c.Pos())
				m[line] = true
				m[line+1] = true
			}
		}
	}
	return w
}

// Covers reports whether a waiver covers the given position.
func (w *Waivers) Covers(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	return w.lines[tf][tf.Line(pos)]
}

// KeyValues splits directive args of the form "k1=v1 k2=v2" into a map.
// Bare words map to "".
func KeyValues(args string) map[string]string {
	m := make(map[string]string)
	for _, fldStr := range strings.Fields(args) {
		k, v, _ := strings.Cut(fldStr, "=")
		m[k] = v
	}
	return m
}

// IsTestFile reports whether the file at pos is a _test.go file (the
// contract analyzers skip test code; tests may block, allocate and use
// context.Background freely).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
