// Package antest is the repo's offline stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// directory as one package, runs an analyzer (and its Requires
// closure), and matches reported diagnostics against `// want "rx"`
// comments in the fixtures.
//
// analysistest itself depends on go/packages, which is not part of the
// x/tools subset vendored from the Go toolchain; this harness
// type-checks fixtures with the stdlib source importer instead, so the
// suites run with no network and no module downloads. Fixtures may
// import anything from the standard library and nothing else.
//
// Expectation syntax, a strict subset of analysistest's:
//
//	ch <- 1 // want "sends on a channel"
//
// The string is a regexp matched against diagnostics reported on that
// line of that file. Multiple expectations on one line are written as
// consecutive quoted strings: // want "first" "second". The test fails
// on any unmatched expectation and on any unexpected diagnostic.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// diag is one collected diagnostic.
type diag struct {
	file string
	line int
	msg  string
}

// expectation is one parsed want clause.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE matches one double-quoted or backquoted expectation string.
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the fixture directory, applies the analyzer, and matches
// diagnostics against want comments.
func Run(t *testing.T, fixtureDir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("antest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("antest: no fixtures in %s", fixtureDir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("antest: parse: %v", err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files)
	if err != nil {
		t.Fatalf("antest: typecheck %s: %v", fixtureDir, err)
	}

	var got []diag
	report := func(d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		got = append(got, diag{file: filepath.Base(pos.Filename), line: pos.Line, msg: d.Message})
	}
	if err := runAnalyzer(a, fset, files, pkg, info, report, make(map[*analysis.Analyzer]interface{})); err != nil {
		t.Fatalf("antest: run %s: %v", a.Name, err)
	}

	expectations := parseWants(t, fset, files)
	for i := range got {
		d := &got[i]
		found := false
		for j := range expectations {
			e := &expectations[j]
			if e.matched || e.file != d.file || e.line != d.line {
				continue
			}
			if e.rx.MatchString(d.msg) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.raw)
		}
	}
}

// typecheck type-checks the fixture files with the stdlib source
// importer (offline; resolves standard-library imports from GOROOT
// source).
func typecheck(fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check("fixture", fset, files, info)
	return pkg, info, err
}

// runAnalyzer executes a and its Requires closure, memoizing results.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	report func(analysis.Diagnostic), results map[*analysis.Analyzer]interface{}) error {
	if _, done := results[a]; done {
		return nil
	}
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		if err := runAnalyzer(req, fset, files, pkg, info, func(analysis.Diagnostic) {}, results); err != nil {
			return err
		}
		resultOf[req] = results[req]
	}
	facts := newFactStore()
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		// Fixtures pose as module code: analyzers that restrict
		// themselves to the enclosing module (lockcheck) must not skip
		// them the way they skip standard-library dependencies.
		Module:            &analysis.Module{Path: "fixture.test", GoVersion: "go1.24"},
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          resultOf,
		Report:            report,
		ImportObjectFact:  facts.importObjectFact,
		ExportObjectFact:  facts.exportObjectFact,
		ImportPackageFact: facts.importPackageFact,
		ExportPackageFact: facts.exportPackageFact,
		AllObjectFacts:    facts.allObjectFacts,
		AllPackageFacts:   facts.allPackageFacts,
		ReadFile:          os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return nil
}

// factStore is a trivial single-package in-memory fact table; fixture
// suites never exercise cross-package facts (the lint-at-HEAD test
// covers those through the real go vet driver).
type factStore struct {
	obj map[types.Object][]analysis.Fact
	pkg map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[types.Object][]analysis.Fact),
		pkg: make(map[*types.Package][]analysis.Fact),
	}
}

func (s *factStore) exportObjectFact(obj types.Object, f analysis.Fact) {
	s.obj[obj] = append(s.obj[obj], f)
}

func (s *factStore) importObjectFact(obj types.Object, f analysis.Fact) bool {
	for _, have := range s.obj[obj] {
		if fmt.Sprintf("%T", have) == fmt.Sprintf("%T", f) {
			reflectSet(f, have)
			return true
		}
	}
	return false
}

func (s *factStore) exportPackageFact(f analysis.Fact) {}

func (s *factStore) importPackageFact(p *types.Package, f analysis.Fact) bool { return false }

func (s *factStore) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, fs := range s.obj {
		for _, f := range fs {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	return out
}

func (s *factStore) allPackageFacts() []analysis.PackageFact { return nil }

// reflectSet copies src's pointed-to value into dst (both *T facts).
func reflectSet(dst, src analysis.Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() == reflect.Pointer && sv.Kind() == reflect.Pointer && dv.Type() == sv.Type() {
		dv.Elem().Set(sv.Elem())
	}
}

// parseWants extracts want expectations from fixture comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					raw := q[1]
					if raw == "" {
						raw = q[2]
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						rx:   rx,
						raw:  raw,
					})
				}
			}
		}
	}
	return out
}
