// Command doccheck enforces the repository's documentation floor: every
// package must carry a package comment, and every exported top-level
// identifier (types, functions, methods, consts, vars) must carry a doc
// comment. CI runs it via `make doc-check`; it exits non-zero listing
// each violation as file:line.
//
// The rule is deliberately presence-only (no style linting): the
// valuable invariant is that `go doc` never comes back empty for
// anything a reader can reach.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	pkgDocs := make(map[string]bool)    // dir -> has package comment
	pkgFirst := make(map[string]string) // dir -> a representative file
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			pkgDocs[dir] = true
		} else if _, seen := pkgDocs[dir]; !seen {
			pkgDocs[dir] = false
		}
		if _, ok := pkgFirst[dir]; !ok {
			pkgFirst[dir] = path
		}
		pos := func(p token.Pos) string {
			position := fset.Position(p)
			return fmt.Sprintf("%s:%d", position.Filename, position.Line)
		}
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					violations = append(violations,
						fmt.Sprintf("%s: exported func %s has no doc comment", pos(dd.Pos()), dd.Name.Name))
				}
			case *ast.GenDecl:
				if dd.Tok != token.TYPE && dd.Tok != token.VAR && dd.Tok != token.CONST {
					continue
				}
				for _, spec := range dd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
							violations = append(violations,
								fmt.Sprintf("%s: exported type %s has no doc comment", pos(s.Pos()), s.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
								violations = append(violations,
									fmt.Sprintf("%s: exported %s %s has no doc comment", pos(n.Pos()), dd.Tok, n.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for dir, has := range pkgDocs {
		if !has {
			violations = append(violations,
				fmt.Sprintf("%s: package has no package comment", pkgFirst[dir]))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Printf("doccheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}
