// Package client is the public client API of the replicated key-value
// service: a session-based, fully pipelined client for the binary wire
// protocol served by internal/cluster nodes.
//
// A Session holds one connection per replica it talks to. Every request
// carries a request id, so hundreds of commands can be in flight on a
// single connection; Do returns a Future immediately and the session's
// demultiplexer completes it when the reply arrives. Calls take a
// context.Context: its deadline is propagated to the serving replica,
// which fails the command with ErrTimeout if it cannot execute in time,
// and cancelling the context abandons the request client-side.
//
// With a topology, the session routes each command to a replica of the
// shard owning its first key (preferring the configured site) and fails
// over to the shard's other replicas when a connection cannot be
// established.
//
//	sess, err := client.Dial("10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001")
//	if err != nil { ... }
//	defer sess.Close()
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	if err := sess.Put(ctx, "greeting", []byte("hello")); err != nil { ... }
//	v, err := sess.Get(ctx, "greeting")
//
// Errors are typed: ErrTimeout for expired deadlines (client- or
// server-side), ErrNotFound for reads of missing keys, ErrClosed once
// the session (or the serving node) has shut down.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

// Typed errors returned by the session API. Wrapped errors carry
// detail; test with errors.Is. The sentinels are shared with the
// in-process runtime (internal/core), so code can move between the two
// without changing its error handling.
var (
	// ErrTimeout reports that a request's deadline expired before the
	// command executed, whether the client's context fired or the
	// serving replica gave up.
	ErrTimeout = command.ErrTimeout
	// ErrNotFound reports a Get of a key with no value.
	ErrNotFound = command.ErrNotFound
	// ErrClosed reports a request against a closed session or a replica
	// that shut down.
	ErrClosed = command.ErrClosed
	// ErrWrongShard reports a command on a key whose shard is not
	// replicated by any dialed replica: the session's address set covers
	// only part of a partial-replication topology, and the key lives
	// outside it. The serving side returns the same sentinel when a
	// request reaches a process that does not replicate the key's shard.
	ErrWrongShard = command.ErrWrongShard
	// ErrDraining reports a submission to a replica that is gracefully
	// leaving the cluster; retry against another replica. Sessions with
	// Config.Refresh re-route automatically on the next refresh.
	ErrDraining = command.ErrDraining
)

// Config configures a Session.
type Config struct {
	// Addrs maps each replica's process id to its listen address.
	// Required.
	Addrs map[ids.ProcessID]string
	// Topo, when set, enables shard-aware routing: commands go to a
	// replica of the shard owning their first key. When nil, every
	// command goes to the lowest-id reachable replica.
	Topo *topology.Topology
	// Site is the preferred site when routing with a topology (the
	// replica co-located with the client).
	Site ids.SiteID
	// Prefer, when non-zero, is the session's home replica: it is tried
	// first for every command (before topology- or id-order routing).
	// Combined with RedialBackoff this gives sessions fail-over *and*
	// re-balance: while the home replica is down its dial backoff routes
	// requests to the others, and once it serves again — e.g. after a
	// crash-restart — new requests return to it.
	Prefer ids.ProcessID
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// RedialBackoff is how long a replica that failed to dial is skipped
	// before it is tried again (default 1s; negative disables). Without
	// it, every request issued while a replica is down would pay a full
	// dial timeout before failing over. Consecutive failures back off
	// exponentially from this base up to RedialBackoffMax, and every
	// wait is jittered into [wait/2, wait) so that the many sessions a
	// healed partition releases do not redial in one synchronized storm.
	RedialBackoff time.Duration
	// RedialBackoffMax caps the exponential redial backoff (default
	// 8×RedialBackoff; values below RedialBackoff, e.g. -1, pin the
	// backoff to the fixed RedialBackoff step).
	RedialBackoffMax time.Duration
	// RequestTimeout is the per-request deadline applied when the
	// context has none (default 10s; negative disables). The deadline
	// travels with the request, so the replica itself fails the command
	// with ErrTimeout if it cannot execute it in time.
	RequestTimeout time.Duration
	// Refresh enables membership-aware routing against deployments with
	// dynamic membership (internal/psmr): the session refetches the
	// cluster configuration from a live replica when a reply reports
	// draining/wrong-shard/shutdown or when every candidate replica is
	// unreachable, then re-routes across the new epoch — redirecting
	// around draining replicas and redialing slots whose replica was
	// replaced at a new address. Addrs seeds epoch 0; process ids are
	// stable across epochs (the quorum geometry is fixed for the
	// deployment's lifetime), only addresses and statuses change.
	Refresh bool
}

// Session is a client session. It is safe for concurrent use; requests
// issued concurrently (or via Do without waiting) are pipelined.
type Session struct {
	cfg   Config
	order []ids.ProcessID // routing preference without a topology

	//tempo:guard
	mu     sync.Mutex
	conns  map[ids.ProcessID]*conn
	closed bool
	// down records, per replica, until when dialing is skipped after a
	// dial failure and how many times in a row it failed (driving the
	// exponential backoff). Guarded by mu.
	down map[ids.ProcessID]backoff
	// rng jitters redial backoffs; guarded by mu.
	rng *rand.Rand
	// dialMu serializes dialing per replica so a burst of first
	// requests shares one connection instead of racing dials. Guarded
	// by mu (a membership refresh may add slots the initial address set
	// did not cover); only the mutexes themselves are contended.
	dialMu map[ids.ProcessID]*sync.Mutex

	// mintMu guards the session's pre-minted command-id block, consumed
	// by cross-shard submissions (see cross.go).
	mintMu   sync.Mutex
	mintNext ids.Dot
	mintLeft int

	// route is the swappable routing state: the per-replica addresses
	// and statuses of the latest installed configuration epoch (see
	// membership.go). Loaded lock-free on every request.
	route atomic.Pointer[route]
	// refreshMu serializes configuration refreshes; lastRefresh
	// (unix nanos) rate-limits the asynchronous ones.
	refreshMu   sync.Mutex
	lastRefresh atomic.Int64
}

// New creates a session from a full configuration.
func New(cfg Config) (*Session, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("client: no replica addresses")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RedialBackoff == 0 {
		cfg.RedialBackoff = time.Second
	}
	if cfg.RedialBackoff < 0 {
		cfg.RedialBackoff = 0
	}
	if cfg.RedialBackoffMax == 0 {
		cfg.RedialBackoffMax = 8 * cfg.RedialBackoff
	}
	if cfg.RedialBackoffMax < cfg.RedialBackoff {
		cfg.RedialBackoffMax = cfg.RedialBackoff
	}
	s := &Session{
		cfg:    cfg,
		conns:  make(map[ids.ProcessID]*conn),
		down:   make(map[ids.ProcessID]backoff),
		dialMu: make(map[ids.ProcessID]*sync.Mutex, len(cfg.Addrs)),
		rng:    rand.New(rand.NewSource(rand.Int63())),
	}
	for id := range cfg.Addrs {
		s.order = append(s.order, id)
		s.dialMu[id] = new(sync.Mutex)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	s.route.Store(staticRoute(cfg.Addrs))
	return s, nil
}

// Dial creates a session against the replicas of a single-shard
// cluster; addrs[i] is the address of the replica with process id i+1
// (the -peers order of cmd/tempo-server).
func Dial(addrs ...string) (*Session, error) {
	m := make(map[ids.ProcessID]string, len(addrs))
	for i, a := range addrs {
		m[ids.ProcessID(i+1)] = a
	}
	return New(Config{Addrs: m})
}

// Close shuts the session down. In-flight requests fail with ErrClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = nil
	s.mu.Unlock()
	for _, c := range conns {
		c.fail(ErrClosed)
	}
	return nil
}

// candidates returns the replicas that may serve a command on key, in
// routing-preference order: the session's home replica (Prefer) first,
// then — with a topology — the owning shard's replica at the session's
// site and the shard's other replicas, or every replica in id order
// without one. Replicas absent from the current route (no address, or
// fenced at the installed epoch) are dropped: an empty result means no
// routable replica serves the key's shard (ErrWrongShard). Replicas
// that are addressed but not accepting new submissions (joining or
// draining) are used only when no fully active one remains.
func (s *Session) candidates(key command.Key) []ids.ProcessID {
	rt := s.route.Load()
	t := s.cfg.Topo
	var base []ids.ProcessID
	if t == nil {
		base = rt.filter(s.order, true)
		if len(base) == 0 {
			base = rt.filter(s.order, false)
		}
	} else {
		shard := t.ShardOf(key)
		procs := t.ShardProcesses(shard)
		local := t.ProcessAt(s.cfg.Site, shard)
		base = rt.shardOrder(procs, local, true)
		if len(base) == 0 {
			base = rt.shardOrder(procs, local, false)
		}
	}
	home := s.cfg.Prefer
	if home == 0 || (len(base) > 0 && base[0] == home) {
		return base
	}
	found := false
	for _, p := range base {
		if p == home {
			found = true
			break
		}
	}
	if !found {
		return base // home replica does not serve this key's shard
	}
	out := make([]ids.ProcessID, 0, len(base))
	out = append(out, home)
	for _, p := range base {
		if p != home {
			out = append(out, p)
		}
	}
	return out
}

// backoff is one replica's redial state: skip dialing until `until`,
// after `fails` consecutive dial failures.
type backoff struct {
	until time.Time
	fails uint32
}

// inBackoff reports whether a replica's dial backoff is still running.
func (s *Session) inBackoff(pid ids.ProcessID, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.down[pid]
	return ok && now.Before(b.until)
}

// noteDialFailure extends a replica's redial backoff: exponential in
// the number of consecutive failures, capped at RedialBackoffMax, and
// jittered into [wait/2, wait) so sessions desynchronize their redials
// after a shared outage heals.
func (s *Session) noteDialFailure(pid ids.ProcessID) {
	if s.cfg.RedialBackoff <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.down[pid]
	if b.fails < 32 {
		b.fails++
	}
	wait := s.cfg.RedialBackoff << (b.fails - 1)
	if wait > s.cfg.RedialBackoffMax || wait < s.cfg.RedialBackoff { // cap (and shift overflow)
		wait = s.cfg.RedialBackoffMax
	}
	wait = wait/2 + time.Duration(s.rng.Int63n(int64(wait/2)+1))
	b.until = time.Now().Add(wait)
	s.down[pid] = b
}

// Do submits a command built from ops and returns a Future for its
// results, leaving the caller free to keep further commands in flight.
// The context's deadline (or the session's RequestTimeout) travels with
// the request. Routing failures try each candidate replica in turn.
//
// With a topology, ops spanning shards become one cross-shard command:
// it is submitted under a single pre-minted command id to a replica of
// its first accessed shard while watch registrations go to a replica of
// every other accessed shard, and the future completes with the
// per-shard result segments merged back into op order (see cross.go).
func (s *Session) Do(ctx context.Context, ops ...command.Op) *Future {
	f := newFuture()
	if len(ops) == 0 {
		f.fulfill(nil, errors.New("client: empty command"))
		return f
	}
	deadline, err := s.deadlineFor(ctx)
	if err != nil {
		f.fulfill(nil, err)
		return f
	}
	// A zero-alloc scan decides the common single-shard case; the sorted
	// shard set is only built on the cross-shard branch.
	if t := s.cfg.Topo; t != nil && crossesShards(t, ops) {
		s.doCross(ctx, f, deadline, ops, opsShards(t, ops))
		return f
	}
	s.sendRouted(f, ops[0].Key, func(c *conn) error {
		return c.send(f, deadline, ops)
	})
	return f
}

// deadlineFor resolves the request deadline from the context and the
// session's RequestTimeout (0 = none).
func (s *Session) deadlineFor(ctx context.Context) (time.Duration, error) {
	deadline := s.cfg.RequestTimeout
	if d, ok := ctx.Deadline(); ok {
		deadline = time.Until(d)
		if deadline <= 0 {
			return 0, fmt.Errorf("%w: %w", ErrTimeout, ctx.Err())
		}
	}
	if deadline < 0 {
		deadline = 0 // RequestTimeout < 0: no deadline
	}
	return deadline, nil
}

// sendRouted delivers one request to the first reachable replica that
// may serve the given key, failing f when none is. send enqueues the
// request frame on the chosen connection.
func (s *Session) sendRouted(f *Future, key command.Key, send func(c *conn) error) {
	cands := s.candidates(key)
	if len(cands) == 0 {
		f.fulfill(nil, fmt.Errorf("%w (key %q)", ErrWrongShard, key))
		return
	}
	s.sendCandidates(f, cands, send)
}

// sendCandidates tries each candidate replica in turn until one accepts
// the request, failing f when none does. When every candidate is
// unreachable and membership refresh is enabled, the stale replica list
// itself may be the problem (replicas moved or were replaced at a newer
// epoch): the session refetches the configuration from any live replica
// and, if a newer epoch was installed, retries the candidates once
// across it instead of failing over forever within the old addresses.
func (s *Session) sendCandidates(f *Future, cands []ids.ProcessID, send func(c *conn) error) {
	done, lastErr := s.tryCandidates(f, cands, send)
	if done {
		return
	}
	if s.refreshSync() {
		var err2 error
		if done, err2 = s.tryCandidates(f, cands, send); done {
			return
		}
		if err2 != nil {
			lastErr = err2
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no candidate replicas")
	}
	f.fulfill(nil, fmt.Errorf("client: no replica reachable: %w", lastErr))
}

// tryCandidates makes one routing pass over cands: the first sweep
// skips replicas in dial backoff (fail over fast while a replica is
// down); the second retries them anyway, so a fully backed-off
// candidate set still makes a real attempt instead of failing on stale
// knowledge. done reports that f was handed to a connection (or
// fulfilled with ErrClosed).
func (s *Session) tryCandidates(f *Future, cands []ids.ProcessID, send func(c *conn) error) (done bool, lastErr error) {
	try := func(pid ids.ProcessID) bool {
		c, err := s.conn(pid)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				f.fulfill(nil, err)
				return true
			}
			lastErr = err
			return false
		}
		if err := send(c); err != nil {
			lastErr = err
			return false
		}
		return true
	}
	now := time.Now()
	var skipped []ids.ProcessID
	for _, pid := range cands {
		if s.inBackoff(pid, now) {
			skipped = append(skipped, pid)
			continue
		}
		if try(pid) {
			return true, nil
		}
	}
	for _, pid := range skipped {
		if try(pid) {
			return true, nil
		}
	}
	return false, lastErr
}

// Execute submits a command and waits for its per-op results.
func (s *Session) Execute(ctx context.Context, ops ...command.Op) ([][]byte, error) {
	return s.Do(ctx, ops...).Wait(ctx)
}

// Put writes a key.
func (s *Session) Put(ctx context.Context, key string, value []byte) error {
	_, err := s.Execute(ctx, command.Op{Kind: command.Put, Key: command.Key(key), Value: value})
	return err
}

// Get reads a key. A missing key returns ErrNotFound, distinct from a
// present empty value.
func (s *Session) Get(ctx context.Context, key string) ([]byte, error) {
	vals, err := s.Execute(ctx, command.Op{Kind: command.Get, Key: command.Key(key)})
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 || vals[0] == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return vals[0], nil
}

// conn returns the live connection to pid, dialing if needed. Dials
// are serialized per replica, so a burst of first requests performs one
// dial and the rest pick up the fresh connection.
func (s *Session) conn(pid ids.ProcessID) (*conn, error) {
	live := func() (*conn, error, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return nil, ErrClosed, true
		}
		if c := s.conns[pid]; c != nil && !c.isDead() {
			return c, nil, true
		}
		return nil, nil, false
	}
	if c, err, ok := live(); ok {
		return c, err
	}
	addr, ok := s.route.Load().addrs[pid]
	if !ok {
		return nil, fmt.Errorf("client: no address for replica %d", pid)
	}
	s.mu.Lock()
	dmu := s.dialMu[pid]
	if dmu == nil { // slot first addressed by a membership refresh
		dmu = new(sync.Mutex)
		s.dialMu[pid] = dmu
	}
	s.mu.Unlock()
	dmu.Lock()
	defer dmu.Unlock()
	if c, err, ok := live(); ok { // someone dialed while we waited
		return c, err
	}
	nc, err := dial(addr, s.cfg.DialTimeout)
	if err != nil {
		s.noteDialFailure(pid)
		return nil, err
	}
	fresh := newConn(pid, addr, nc, s.noteWireErr, s.noteConnLoss)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fresh.fail(ErrClosed)
		return nil, ErrClosed
	}
	delete(s.down, pid) // the replica is back: route to it again
	s.conns[pid] = fresh
	s.mu.Unlock()
	return fresh, nil
}
