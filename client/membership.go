package client

import (
	"errors"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/membership"
)

// Membership-aware routing. Deployments with dynamic membership
// (internal/psmr) change their configuration while serving: a replica
// drains out, a crashed one is fenced, a successor joins at a new
// address and incarnation. Sessions keep up by holding a swappable
// route — the address and status of every slot at the latest installed
// epoch — and refreshing it from the replicas themselves over the
// membership config protocol, rather than failing over forever within
// the replica list they were dialed with.
//
// Refresh triggers (all gated on Config.Refresh):
//   - a reply carries a draining, wrong-shard or shutdown error
//     (asynchronous, rate-limited: the request itself still fails and
//     the caller retries, but the next attempt routes on fresh state);
//   - every candidate replica of a request is unreachable
//     (synchronous: the request retries once across the new epoch).
//
// Because the quorum geometry is fixed for a deployment's lifetime,
// process ids never change — an epoch only rebinds a slot's address
// and status. A refresh therefore never invalidates in-flight
// requests; it closes connections to slots whose address changed
// (their futures fail, callers retry on the new address) and leaves
// everything else untouched.

// route is the session's routing state at one configuration epoch:
// which replicas are addressable at all, and which of them accept new
// submissions. Immutable once installed; swapped atomically.
type route struct {
	epoch uint64
	addrs map[ids.ProcessID]string
	// active marks replicas accepting new submissions (Active status).
	// Addressed-but-inactive replicas (joining, draining) are routed to
	// only when no active one remains.
	active map[ids.ProcessID]bool
}

// staticRoute lifts a fixed address set into the pre-refresh epoch 0:
// every addressed replica counts as active.
func staticRoute(addrs map[ids.ProcessID]string) *route {
	rt := &route{
		epoch:  0,
		addrs:  make(map[ids.ProcessID]string, len(addrs)),
		active: make(map[ids.ProcessID]bool, len(addrs)),
	}
	for pid, a := range addrs {
		if a == "" {
			continue
		}
		rt.addrs[pid] = a
		rt.active[pid] = true
	}
	return rt
}

// usable reports whether pid may serve a request: active when
// activeOnly, else merely addressed.
func (rt *route) usable(pid ids.ProcessID, activeOnly bool) bool {
	if activeOnly {
		return rt.active[pid]
	}
	_, ok := rt.addrs[pid]
	return ok
}

// filter keeps the usable replicas of order, preserving it.
func (rt *route) filter(order []ids.ProcessID, activeOnly bool) []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(order))
	for _, pid := range order {
		if rt.usable(pid, activeOnly) {
			out = append(out, pid)
		}
	}
	return out
}

// shardOrder orders a shard's usable replicas for routing: the
// session-local one (local, 0 if none) first, then the rest in id
// order.
func (rt *route) shardOrder(procs []ids.ProcessID, local ids.ProcessID, activeOnly bool) []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(procs))
	if local != 0 && rt.usable(local, activeOnly) {
		out = append(out, local)
	}
	for _, p := range procs {
		if len(out) > 0 && p == out[0] {
			continue
		}
		if rt.usable(p, activeOnly) {
			out = append(out, p)
		}
	}
	return out
}

// Epoch returns the configuration epoch the session routes on: 0 until
// a refresh installed a fetched configuration.
func (s *Session) Epoch() uint64 { return s.route.Load().epoch }

// RefreshConfig forces a synchronous configuration refresh: the
// session fetches the current membership config from its replicas and
// re-routes on it. It reports whether a newer epoch was installed.
// Requires Config.Refresh.
func (s *Session) RefreshConfig() (bool, error) {
	if !s.cfg.Refresh {
		return false, errors.New("client: membership refresh not enabled")
	}
	return s.doRefresh()
}

// refreshSync is the candidate-exhaustion trigger: refresh now, and
// report whether routing state actually changed (so the caller knows a
// retry has new information to work with).
func (s *Session) refreshSync() bool {
	if !s.cfg.Refresh {
		return false
	}
	installed, _ := s.doRefresh()
	return installed
}

// noteWireErr observes every typed error reply (conn read loops call
// it): codes that indicate stale routing — a draining replica, a
// wrong-shard redirect, a replica shutting down — schedule an
// asynchronous, rate-limited refresh. The failed request is not
// retried here; callers retry and route on the refreshed state.
func (s *Session) noteWireErr(code command.ErrCode) {
	if !s.cfg.Refresh {
		return
	}
	switch code {
	case command.ErrCodeDraining, command.ErrCodeWrongShard, command.ErrCodeShutdown:
	default:
		return
	}
	s.refreshAsync()
}

// noteConnLoss observes a transport loss on an established connection
// (conn read/write loops call it): the replica may have been replaced
// at a new address, so schedule an asynchronous, rate-limited refresh.
func (s *Session) noteConnLoss() {
	if !s.cfg.Refresh {
		return
	}
	s.refreshAsync()
}

// refreshAsync schedules one background refresh, rate-limited so reply
// storms and cascading conn failures collapse into a single fetch.
func (s *Session) refreshAsync() {
	const gap = 300 * time.Millisecond
	now := time.Now().UnixNano()
	last := s.lastRefresh.Load()
	if now-last < int64(gap) || !s.lastRefresh.CompareAndSwap(last, now) {
		return // a recent (or concurrent) refresh already covers this
	}
	go s.doRefresh()
}

// doRefresh fetches the membership config from the first answering
// replica and installs it if it is newer than the installed route.
// Serialized: concurrent triggers collapse into one fetch round.
func (s *Session) doRefresh() (bool, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.lastRefresh.Store(time.Now().UnixNano())
	rt := s.route.Load()
	seen := make(map[string]bool, len(rt.addrs))
	var addrs []string
	appendAddrs := func(m map[ids.ProcessID]string) {
		for _, a := range m {
			if a != "" && !seen[a] {
				seen[a] = true
				addrs = append(addrs, a)
			}
		}
	}
	appendAddrs(rt.addrs)
	appendAddrs(s.cfg.Addrs) // fall back to the seed set if the route went fully stale
	timeout := s.cfg.DialTimeout
	var lastErr error
	for _, a := range addrs {
		cfg, err := membership.Fetch(a, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		return s.installConfig(cfg)
	}
	if lastErr == nil {
		lastErr = errors.New("client: no replica to fetch the configuration from")
	}
	return false, lastErr
}

// installConfig swaps the session's route to a fetched configuration
// epoch, if newer. Connections to slots whose address changed are
// failed (their in-flight requests error and callers retry against the
// new address); connections to unchanged slots keep serving across the
// epoch bump.
func (s *Session) installConfig(cfg *membership.Config) (bool, error) {
	topo, err := cfg.Topology()
	if err != nil {
		return false, err
	}
	rt := &route{
		epoch:  cfg.Epoch,
		addrs:  make(map[ids.ProcessID]string),
		active: make(map[ids.ProcessID]bool),
	}
	for _, pi := range topo.Processes() {
		m, ok := cfg.Member(pi.Site)
		if !ok || m.Addr == "" || m.Status == membership.Dead || m.Status == membership.Left {
			continue
		}
		rt.addrs[pi.ID] = m.Addr
		if m.Status == membership.Active {
			rt.active[pi.ID] = true
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	if cur := s.route.Load(); cfg.Epoch <= cur.epoch {
		s.mu.Unlock()
		return false, nil
	}
	var moved []*conn
	for pid, c := range s.conns {
		if na, ok := rt.addrs[pid]; c != nil && (!ok || na != c.addr) {
			moved = append(moved, c)
			delete(s.conns, pid)
		}
	}
	s.route.Store(rt)
	s.mu.Unlock()
	for _, c := range moved {
		c.fail(errors.New("client: replica readdressed by a configuration change"))
	}
	return true, nil
}
