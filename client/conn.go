package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
)

// conn is one pipelined connection to a replica. Requests are assigned
// connection-local ids, appended to a write buffer flushed by a
// dedicated writer goroutine (so a burst of Do calls coalesces into few
// writes), and tracked in a pending map the read loop uses to
// demultiplex replies back to their futures.
type conn struct {
	pid  ids.ProcessID
	addr string // address dialed; a refresh closes conns whose replica moved
	nc   net.Conn

	// onWireErr, when set, observes every typed error reply before it
	// fails the future (the session's membership refresh trigger). Set
	// at construction, never changed; must not block.
	onWireErr func(command.ErrCode)
	// onLost, when set, observes a genuine transport loss (read or
	// write failure, not a deliberate teardown) — the session's
	// connection-loss refresh trigger. Same contract as onWireErr.
	onLost func()

	//tempo:guard
	mu      sync.Mutex
	closed  bool
	err     error
	nextID  uint64
	pending map[uint64]*Future
	wbuf    []byte // encoded request frames awaiting the writer
	scratch []byte // request-body staging, reused per frame

	kick chan struct{} // cap 1: wakes the writer
	dead chan struct{} // closed on teardown
}

// dial establishes a binary-protocol connection: TCP plus the
// version-2 client magic prefix (kind-tagged request frames, which add
// the cross-shard mint/submit-at/watch requests to plain submission).
func dial(addr string, timeout time.Duration) (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if _, err := nc.Write(cluster.ClientMagic2[:]); err != nil {
		nc.Close()
		return nil, err
	}
	return nc, nil
}

func newConn(pid ids.ProcessID, addr string, nc net.Conn, onWireErr func(command.ErrCode), onLost func()) *conn {
	c := &conn{
		pid:       pid,
		addr:      addr,
		nc:        nc,
		onWireErr: onWireErr,
		onLost:    onLost,
		pending:   make(map[uint64]*Future),
		kick:      make(chan struct{}, 1),
		dead:      make(chan struct{}),
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

func (c *conn) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// enqueue registers f under a fresh request id and appends the frame
// built by encode to the write buffer.
func (c *conn) enqueue(f *Future, encode func(buf []byte, scratch *[]byte, reqID uint64) []byte) error {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = f
	f.c, f.reqID = c, id
	c.wbuf = encode(c.wbuf, &c.scratch, id)
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return nil
}

// send registers f and enqueues a plain submission. deadline 0 means no
// server-side deadline.
func (c *conn) send(f *Future, deadline time.Duration, ops []command.Op) error {
	return c.enqueue(f, func(buf []byte, scratch *[]byte, reqID uint64) []byte {
		return cluster.AppendSubmitRequest(buf, scratch, reqID, deadline, ops)
	})
}

// sendMint enqueues an id-block mint request (mints answer immediately
// server-side, so no deadline travels with the frame; the caller's
// context bounds the wait).
func (c *conn) sendMint(f *Future, count int) error {
	return c.enqueue(f, func(buf []byte, scratch *[]byte, reqID uint64) []byte {
		return cluster.AppendMintRequest(buf, scratch, reqID, count)
	})
}

// sendSubmitAt enqueues a cross-shard submission under a client-held id
// targeting the given shard's replica.
func (c *conn) sendSubmitAt(f *Future, deadline time.Duration, shard ids.ShardID, id ids.Dot, ops []command.Op) error {
	return c.enqueue(f, func(buf []byte, scratch *[]byte, reqID uint64) []byte {
		return cluster.AppendSubmitAtRequest(buf, scratch, reqID, deadline, shard, id, ops)
	})
}

// sendWatch enqueues a watch registration for a command id at the given
// shard's replica.
func (c *conn) sendWatch(f *Future, deadline time.Duration, shard ids.ShardID, id ids.Dot) error {
	return c.enqueue(f, func(buf []byte, scratch *[]byte, reqID uint64) []byte {
		return cluster.AppendWatchRequest(buf, scratch, reqID, deadline, shard, id)
	})
}

// abandon forgets a pending request (context cancellation); the late
// reply, if any, is dropped by the read loop.
func (c *conn) abandon(reqID uint64) {
	c.mu.Lock()
	delete(c.pending, reqID)
	c.mu.Unlock()
}

// writeLoop flushes buffered request frames, coalescing everything
// enqueued since the last wake-up into one write.
func (c *conn) writeLoop() {
	var free []byte
	for {
		select {
		case <-c.kick:
		case <-c.dead:
			return
		}
		c.mu.Lock()
		out := c.wbuf
		c.wbuf = free[:0]
		c.mu.Unlock()
		if len(out) == 0 {
			free = out
			continue
		}
		if _, err := c.nc.Write(out); err != nil {
			c.lost(fmt.Errorf("client: write to replica %d: %w", c.pid, err))
			return
		}
		free = out[:0]
	}
}

// readLoop demultiplexes reply frames to their futures.
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	for {
		body, err := cluster.ReadFrame(br, cluster.MaxClientFrameBytes, &buf)
		if err != nil {
			c.lost(fmt.Errorf("client: connection to replica %d lost: %w", c.pid, err))
			return
		}
		reqID, werr, values, err := cluster.DecodeClientReply(body)
		if err != nil {
			c.fail(fmt.Errorf("client: bad reply from replica %d: %w", c.pid, err))
			return
		}
		c.mu.Lock()
		f := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if f == nil {
			continue // abandoned request; drop the late reply
		}
		if werr.Code != command.ErrCodeNone {
			if c.onWireErr != nil {
				c.onWireErr(werr.Code)
			}
			f.fulfill(nil, wireError(werr))
		} else {
			f.fulfill(values, nil)
		}
	}
}

// wireError maps a typed wire error onto the session's sentinel errors.
func wireError(e command.WireError) error {
	switch e.Code {
	case command.ErrCodeTimeout:
		return fmt.Errorf("%w: %s", ErrTimeout, e.Msg)
	case command.ErrCodeShutdown:
		return fmt.Errorf("%w: %s", ErrClosed, e.Msg)
	case command.ErrCodeWrongShard:
		return fmt.Errorf("%w: %s", ErrWrongShard, e.Msg)
	case command.ErrCodeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, e.Msg)
	default:
		return fmt.Errorf("client: replica error %d: %s", e.Code, e.Msg)
	}
}

// lost is fail for transport failures: it additionally fires the
// session's connection-loss hook (a membership refresh trigger — the
// replica may have been replaced at a new address).
func (c *conn) lost(err error) {
	c.fail(err)
	if c.onLost != nil {
		c.onLost()
	}
}

// fail tears the connection down and fails every pending future.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	close(c.dead)
	c.nc.Close()
	for _, f := range pending {
		f.fulfill(nil, err)
	}
}
