package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

// Cross-shard commands.
//
// A command whose ops span shards executes once per accessed shard, at
// the maximum timestamp across them; each shard's replicas hold only
// that shard's result segment. The session assembles the full result
// client-side with no extra round trip on the submission path:
//
//  1. It holds a block of pre-minted command ids (one ReqMint round
//     trip per mintBlockSize cross-shard commands, against any
//     reachable replica).
//  2. The full op list is submitted under one such id to a replica of
//     the first accessed shard (the gateway), which drives the whole
//     multi-shard protocol; concurrently, watch registrations carrying
//     the same id go to one replica of every other accessed shard.
//  3. Each sub-request completes with its shard's segment when the
//     command executes there; the session merges the segments back into
//     op order and fulfills the caller's future.
//
// Any sub-request failing (timeout, unreachable shard, shutdown) fails
// the command with that error.

// mintBlockSize is how many command ids one ReqMint round trip
// reserves; the block amortizes to zero extra latency per command.
const mintBlockSize = 512

// crossesShards reports whether ops touch more than one shard, without
// allocating (the hot-path check for every topology-routed Do).
func crossesShards(t *topology.Topology, ops []command.Op) bool {
	s0 := t.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if t.ShardOf(op.Key) != s0 {
			return true
		}
	}
	return false
}

// opsShards returns the sorted set of shards accessed by ops.
func opsShards(t *topology.Topology, ops []command.Op) []ids.ShardID {
	return (&command.Command{Ops: ops}).Shards(t.ShardOf)
}

// mintDot takes one command id from the session's pre-minted block,
// fetching a fresh block from any reachable replica when it runs dry.
func (s *Session) mintDot(ctx context.Context) (ids.Dot, error) {
	s.mintMu.Lock()
	defer s.mintMu.Unlock()
	if s.mintLeft == 0 {
		f := newFuture()
		s.sendCandidates(f, s.order, func(c *conn) error {
			return c.sendMint(f, mintBlockSize)
		})
		vals, err := f.Wait(ctx)
		if err != nil {
			return ids.Dot{}, fmt.Errorf("client: minting command ids: %w", err)
		}
		first, err := cluster.DecodeMintReply(vals)
		if err != nil {
			return ids.Dot{}, fmt.Errorf("client: bad mint reply: %w", err)
		}
		if first.IsZero() {
			return ids.Dot{}, errors.New("client: bad mint reply: zero id")
		}
		s.mintNext, s.mintLeft = first, mintBlockSize
	}
	id := s.mintNext
	s.mintNext.Seq++
	s.mintLeft--
	return id, nil
}

// doCross runs one cross-shard command and fulfills f with the merged,
// op-ordered result.
func (s *Session) doCross(ctx context.Context, f *Future, deadline time.Duration, ops []command.Op, shards []ids.ShardID) {
	id, err := s.mintDot(ctx)
	if err != nil {
		f.fulfill(nil, err)
		return
	}
	t := s.cfg.Topo
	// Positions of each shard's ops in the full command: shard s's reply
	// carries exactly the values of the ops on s, in command op order.
	pos := make(map[ids.ShardID][]int, len(shards))
	keyFor := make(map[ids.ShardID]command.Key, len(shards))
	for i, op := range ops {
		sh := t.ShardOf(op.Key)
		if _, ok := keyFor[sh]; !ok {
			keyFor[sh] = op.Key
		}
		pos[sh] = append(pos[sh], i)
	}
	// Every accessed shard needs a dialed replica before anything is
	// sent: failing the watch leg after the gateway submission went out
	// would leave a command executing whose result the client already
	// gave up on.
	for _, sh := range shards {
		if len(s.candidates(keyFor[sh])) == 0 {
			f.fulfill(nil, fmt.Errorf("%w (shard %d, key %q)", ErrWrongShard, sh, keyFor[sh]))
			return
		}
	}
	subs := make([]*Future, len(shards))
	for i, sh := range shards {
		sub := newFuture()
		subs[i] = sub
		switch {
		case i == 0:
			// The gateway: a replica of the first accessed shard submits
			// the command under the session's id and answers with its
			// shard's segment.
			s.sendRouted(sub, keyFor[sh], func(c *conn) error {
				return c.sendSubmitAt(sub, deadline, sh, id, ops)
			})
		default:
			s.sendRouted(sub, keyFor[sh], func(c *conn) error {
				return c.sendWatch(sub, deadline, sh, id)
			})
		}
	}
	go func() {
		merged := make([][]byte, len(ops))
		for i, sub := range subs {
			vals, err := sub.Wait(ctx)
			if err != nil {
				f.fulfill(nil, fmt.Errorf("client: cross-shard command %v at shard %d: %w", id, shards[i], err))
				return
			}
			idxs := pos[shards[i]]
			if len(vals) != len(idxs) {
				f.fulfill(nil, fmt.Errorf("client: cross-shard command %v: shard %d returned %d values for %d ops",
					id, shards[i], len(vals), len(idxs)))
				return
			}
			for j, p := range idxs {
				merged[p] = vals[j]
			}
		}
		f.fulfill(merged, nil)
	}()
}
