package client

import (
	"context"
	"fmt"
	"sync"
)

// Future is the pending result of a Do call. It completes when the
// serving replica replies, when the request's connection fails, or when
// the waiting context is cancelled.
type Future struct {
	once   sync.Once
	done   chan struct{}
	values [][]byte
	err    error

	// c/reqID identify the in-flight request so a cancelled wait can
	// abandon it; set once by conn.send before the request is written.
	c     *conn
	reqID uint64
}

func newFuture() *Future {
	return &Future{done: make(chan struct{})}
}

// fulfill completes the future; the first completion wins and later
// ones are dropped, so a late reply cannot clobber a cancellation (or
// vice versa).
func (f *Future) fulfill(values [][]byte, err error) {
	f.once.Do(func() {
		f.values, f.err = values, err
		close(f.done)
	})
}

// Done returns a channel closed when the future completes; use it to
// select over many in-flight requests.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the future completes or ctx is done. Cancellation
// abandons the request: the session drops its reply whenever it
// arrives. A deadline expiry surfaces as ErrTimeout.
func (f *Future) Wait(ctx context.Context) ([][]byte, error) {
	select {
	case <-f.done:
		return f.values, f.err
	case <-ctx.Done():
		if f.c != nil {
			f.c.abandon(f.reqID)
		}
		f.fulfill(nil, ctxError(ctx.Err()))
		<-f.done
		return f.values, f.err
	}
}

// ctxError maps context errors onto the session's sentinels: a deadline
// expiry is an ErrTimeout; plain cancellation passes through.
func ctxError(err error) error {
	if err == context.DeadlineExceeded {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}
