package client_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// startCluster boots a full-replication Tempo cluster over loopback:
// r nodes at r sites, one shard.
func startCluster(t *testing.T, r, f int) (map[ids.ProcessID]string, *topology.Topology) {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: f})
	if err != nil {
		t.Fatal(err)
	}
	return startNodes(t, topo), topo
}

// startShardedCluster boots a partial-replication cluster: each shard
// replicated at every one of the given sites.
func startShardedCluster(t *testing.T, sites, shards int) (map[ids.ProcessID]string, *topology.Topology) {
	t.Helper()
	names := make([]string, sites)
	rtt := make([][]time.Duration, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	return startNodes(t, topo), topo
}

func startNodes(t *testing.T, topo *topology.Topology) map[ids.ProcessID]string {
	t.Helper()
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := cluster.NewNode(pi.ID, rep, addrs)
		n.StartListener(lns[pi.ID])
		t.Cleanup(n.Close)
	}
	return addrs
}

// startStuckNode boots a single node of a 3-replica topology whose two
// peers are unreachable: submitted commands can never reach a quorum,
// so they stay pending until a deadline fails them.
func startStuckNode(t *testing.T) string {
	t.Helper()
	names := []string{"s0", "s1", "s2"}
	rtt := [][]time.Duration{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[ids.ProcessID]string{
		1: ln.Addr().String(),
		2: "127.0.0.1:1", // dead
		3: "127.0.0.1:1", // dead
	}
	rep := tempo.New(1, topo, tempo.Config{
		PromiseInterval: 2 * time.Millisecond,
		RecoveryTimeout: time.Hour,
	})
	n := cluster.NewNode(1, rep, addrs)
	n.StartListener(ln)
	t.Cleanup(n.Close)
	return addrs[1]
}

func sessionTo(t *testing.T, addrs ...string) *client.Session {
	t.Helper()
	s, err := client.Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestPipelinedRequests keeps many commands in flight on one connection
// and checks that they all complete and that their effects apply in
// submission order.
func TestPipelinedRequests(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	s := sessionTo(t, addrs[topo.ProcessAt(0, 0)])
	ctx := context.Background()

	const n = 200
	futs := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = s.Do(ctx, command.Op{
			Kind: command.Put, Key: "pipelined", Value: []byte(fmt.Sprintf("v%03d", i)),
		})
	}
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	v, err := s.Get(ctx, "pipelined")
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("v%03d", n-1); string(v) != want {
		t.Fatalf("final value %q, want %q: pipelined puts applied out of order", v, want)
	}
}

// TestPipelinedReadsSeeEarlierWrites interleaves reads with writes in
// one pipeline; every read must observe the write submitted just before
// it on the same session.
func TestPipelinedReadsSeeEarlierWrites(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	s := sessionTo(t, addrs[topo.ProcessAt(0, 0)])
	ctx := context.Background()

	const n = 50
	type pair struct{ put, get *client.Future }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i].put = s.Do(ctx, command.Op{
			Kind: command.Put, Key: "rw", Value: []byte{byte(i)},
		})
		pairs[i].get = s.Do(ctx, command.Op{Kind: command.Get, Key: "rw"})
	}
	for i, p := range pairs {
		if _, err := p.put.Wait(ctx); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		vals, err := p.get.Wait(ctx)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(vals) != 1 || len(vals[0]) != 1 || vals[0][0] < byte(i) {
			t.Fatalf("get %d read %v, want at least [%d]", i, vals, i)
		}
	}
}

// TestContextCancellationMidFlight cancels a request that can never
// complete (no quorum); Wait must return promptly with the context's
// error and the session must remain usable.
func TestContextCancellationMidFlight(t *testing.T) {
	addr := startStuckNode(t)
	s := sessionTo(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	f := s.Do(ctx, command.Op{Kind: command.Put, Key: "k", Value: []byte("v")})
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := f.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled Wait took %v", el)
	}
	// The session is still usable: a second in-flight request completes
	// independently (with its own deadline).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel2()
	if _, err := s.Do(ctx2, command.Op{Kind: command.Get, Key: "k"}).Wait(ctx2); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("second request = %v, want ErrTimeout", err)
	}
}

// TestDeadlinePropagation sends a request with a server-side deadline
// (no client-side one) to a node that cannot execute it: the replica
// itself must fail the command with a typed timeout.
func TestDeadlinePropagation(t *testing.T) {
	addr := startStuckNode(t)
	s, err := client.New(client.Config{
		Addrs:          map[ids.ProcessID]string{1: addr},
		RequestTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The context has no deadline, so the only timeout source is the
	// server honoring the propagated per-request deadline.
	start := time.Now()
	_, err = s.Execute(context.Background(), command.Op{Kind: command.Put, Key: "k", Value: []byte("v")})
	el := time.Since(start)
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("Execute on stuck node = %v, want ErrTimeout", err)
	}
	if el < 200*time.Millisecond || el > 5*time.Second {
		t.Fatalf("server-side deadline fired after %v, want ≈250ms", el)
	}
}

// TestClientDeadlineShortCircuits checks the client side of deadline
// handling: an already-expired context fails fast with ErrTimeout.
func TestClientDeadlineShortCircuits(t *testing.T) {
	addr := startStuckNode(t)
	s := sessionTo(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Execute(ctx, command.Op{Kind: command.Get, Key: "k"})
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("client deadline took %v", el)
	}
}

// TestMixedLegacyAndBinaryClients runs the legacy gob client and a
// binary session against the same node: both protocols are served on
// one listener and observe each other's writes.
func TestMixedLegacyAndBinaryClients(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	addr := addrs[topo.ProcessAt(0, 0)]

	legacy, err := cluster.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	s := sessionTo(t, addr)
	ctx := context.Background()

	if err := legacy.Put("from-legacy", []byte("gob")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, "from-legacy")
	if err != nil || !bytes.Equal(v, []byte("gob")) {
		t.Fatalf("binary client read of legacy write = %q, %v", v, err)
	}
	if err := s.Put(ctx, "from-binary", []byte("bin")); err != nil {
		t.Fatal(err)
	}
	v2, err := legacy.Get("from-binary")
	if err != nil || !bytes.Equal(v2, []byte("bin")) {
		t.Fatalf("legacy client read of binary write = %q, %v", v2, err)
	}
}

// TestGetNotFound pins the typed-error contract: a missing key is
// ErrNotFound, a present empty value is not.
func TestGetNotFound(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	s := sessionTo(t, addrs[topo.ProcessAt(0, 0)])
	ctx := context.Background()

	if _, err := s.Get(ctx, "never-written"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Put(ctx, "empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, "empty")
	if err != nil {
		t.Fatalf("Get(empty) = %v, want success: empty value conflated with missing key", err)
	}
	if v == nil || len(v) != 0 {
		t.Fatalf("Get(empty) = %v, want non-nil empty", v)
	}
}

// TestClosedSession pins ErrClosed.
func TestClosedSession(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	s := sessionTo(t, addrs[topo.ProcessAt(0, 0)])
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Get(ctx, "k"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Get on closed session = %v, want ErrClosed", err)
	}
}

// TestShardRouting drives a sharded deployment through a topology-aware
// session: commands are routed to replicas of the owning shard and
// cross-site sessions observe each other's writes.
func TestShardRouting(t *testing.T) {
	addrs, topo := startShardedCluster(t, 3, 2)
	mk := func(site ids.SiteID) *client.Session {
		s, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: site})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	s0, s1 := mk(0), mk(1)
	ctx := context.Background()

	// Find one key per shard.
	keys := map[ids.ShardID]string{}
	for i := 0; len(keys) < 2; i++ {
		k := fmt.Sprintf("key-%d", i)
		sh := topo.ShardOf(command.Key(k))
		if _, ok := keys[sh]; !ok {
			keys[sh] = k
		}
	}
	for sh, k := range keys {
		if err := s0.Put(ctx, k, []byte(fmt.Sprintf("shard-%d", sh))); err != nil {
			t.Fatalf("put %s (shard %d): %v", k, sh, err)
		}
	}
	for sh, k := range keys {
		v, err := s1.Get(ctx, k)
		if err != nil || string(v) != fmt.Sprintf("shard-%d", sh) {
			t.Fatalf("cross-site get %s = %q, %v", k, v, err)
		}
	}
}

// TestDialFailover routes around an unreachable preferred replica: the
// session fails over to the shard's other replicas.
func TestDialFailover(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	broken := make(map[ids.ProcessID]string, len(addrs))
	for id, a := range addrs {
		broken[id] = a
	}
	broken[topo.ProcessAt(0, 0)] = "127.0.0.1:1" // preferred replica unreachable
	s, err := client.New(client.Config{Addrs: broken})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put with dead preferred replica = %v, want failover success", err)
	}
	v, err := s.Get(ctx, "k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get after failover = %q, %v", v, err)
	}
}

// TestServerCloseFailsInFlight shuts a node down under an in-flight
// request with no deadline at all: the future must fail promptly (with
// the shutdown reply or the connection teardown) instead of hanging on
// a silent socket.
func TestServerCloseFailsInFlight(t *testing.T) {
	names := []string{"s0", "s1", "s2"}
	rtt := [][]time.Duration{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[ids.ProcessID]string{1: ln.Addr().String(), 2: "127.0.0.1:1", 3: "127.0.0.1:1"}
	rep := tempo.New(1, topo, tempo.Config{PromiseInterval: 2 * time.Millisecond, RecoveryTimeout: time.Hour})
	n := cluster.NewNode(1, rep, addrs)
	n.StartListener(ln)

	s, err := client.New(client.Config{
		Addrs:          map[ids.ProcessID]string{1: addrs[1]},
		RequestTimeout: -1, // no deadline anywhere: only shutdown can end this
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f := s.Do(context.Background(), command.Op{Kind: command.Put, Key: "k", Value: []byte("v")})
	time.AfterFunc(100*time.Millisecond, n.Close)
	done := make(chan error, 1)
	go func() {
		_, err := f.Wait(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("request on a closed node succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request hung across node shutdown")
	}
}

// TestBatchedRequestsRouteResults floods one connection with pipelined
// requests — the server coalesces them into multi-op commands — and
// checks every future completes with exactly its own request's results:
// single-op gets, multi-op requests, and not-found reads must come back
// correctly segmented, not shifted into a batchmate's slot.
func TestBatchedRequestsRouteResults(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	s := sessionTo(t, addrs[topo.ProcessAt(0, 0)])
	ctx := context.Background()

	const n = 64
	puts := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		puts[i] = s.Do(ctx, command.Op{
			Kind: command.Put, Key: command.Key(fmt.Sprintf("bk%02d", i)),
			Value: []byte(fmt.Sprintf("bv%02d", i)),
		})
	}
	for i, f := range puts {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// One burst: single gets, two-op requests, and reads of missing keys,
	// all in flight at once so they share batches.
	singles := make([]*client.Future, n)
	doubles := make([]*client.Future, n/2)
	missing := make([]*client.Future, n/4)
	for i := 0; i < n; i++ {
		singles[i] = s.Do(ctx, command.Op{Kind: command.Get, Key: command.Key(fmt.Sprintf("bk%02d", i))})
		if i < n/2 {
			doubles[i] = s.Do(ctx,
				command.Op{Kind: command.Get, Key: command.Key(fmt.Sprintf("bk%02d", i))},
				command.Op{Kind: command.Get, Key: command.Key(fmt.Sprintf("bk%02d", n-1-i))},
			)
		}
		if i < n/4 {
			missing[i] = s.Do(ctx, command.Op{Kind: command.Get, Key: command.Key(fmt.Sprintf("absent%02d", i))})
		}
	}
	for i, f := range singles {
		vals, err := f.Wait(ctx)
		if err != nil || len(vals) != 1 || string(vals[0]) != fmt.Sprintf("bv%02d", i) {
			t.Fatalf("single get %d = %q, %v", i, vals, err)
		}
	}
	for i, f := range doubles {
		vals, err := f.Wait(ctx)
		if err != nil || len(vals) != 2 ||
			string(vals[0]) != fmt.Sprintf("bv%02d", i) || string(vals[1]) != fmt.Sprintf("bv%02d", n-1-i) {
			t.Fatalf("double get %d = %q, %v", i, vals, err)
		}
	}
	for i, f := range missing {
		vals, err := f.Wait(ctx)
		if err != nil || len(vals) != 1 || vals[0] != nil {
			t.Fatalf("missing get %d = %q, %v; want one nil value", i, vals, err)
		}
	}
}

// TestConnectionLossFailsInFlight uses a fake replica that accepts a
// request and drops the connection: the in-flight future must fail
// rather than hang.
func TestConnectionLossFailsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		var magic [4]byte
		br.Read(magic[:])
		var buf []byte
		cluster.ReadFrame(br, cluster.MaxClientFrameBytes, &buf) // swallow one request
		conn.Close()
	}()

	s := sessionTo(t, ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = s.Do(ctx, command.Op{Kind: command.Get, Key: "k"}).Wait(ctx)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("in-flight request on lost connection = %v, want prompt connection error", err)
	}
}

// TestPreferRoutesToHomeReplica pins per-session home routing: a session
// with Prefer set coordinates its commands at that replica (observable
// through the replica's coordinator stats).
func TestPreferRoutesToHomeReplica(t *testing.T) {
	addrs, topo := startCluster(t, 3, 1)
	home := topo.ProcessAt(1, 0) // id 2
	sess, err := client.New(client.Config{Addrs: addrs, Prefer: home})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := sess.Put(ctx, fmt.Sprintf("prefer-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// All five writes went through the home replica: reading them back
	// through it must succeed even if the id-order default (node 1) was
	// never touched. The strongest black-box signal that routing honours
	// Prefer is that a session whose ONLY address is the home replica
	// observes the same session state.
	pin, err := client.New(client.Config{Addrs: map[ids.ProcessID]string{home: addrs[home]}})
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()
	v, err := pin.Get(ctx, "prefer-4")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("prefer-4 = %q, %v", v, err)
	}
}

// TestRedialBackoffFailsOverThenRebalances pins the outage lifecycle: a
// session keeps serving while its home replica is down (fast failover
// after one failed dial, no per-request dial timeouts), and returns to
// the home replica once it is back and the backoff expires — the
// crash-restart client story end to end.
func TestRedialBackoffFailsOverThenRebalances(t *testing.T) {
	// A 3-replica topology where node 1 starts out down: its address is
	// reserved but nothing listens there yet.
	names := []string{"s0", "s1", "s2"}
	rtt := [][]time.Duration{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	lnHome, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	homeAddr := lnHome.Addr().String()
	lnHome.Close()
	lns := make(map[ids.ProcessID]net.Listener)
	// Node 3 is the one that starts out down: fast quorums prefer the
	// low-id replicas, so the surviving pair keeps committing without
	// the recovery protocol.
	addrs := map[ids.ProcessID]string{3: homeAddr}
	for _, pid := range []ids.ProcessID{1, 2} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pid] = ln
		addrs[pid] = ln.Addr().String()
	}
	mkRep := func(pid ids.ProcessID) *tempo.Process {
		// A realistic recovery timeout matters here: the node joining
		// late fills the holes left by its peers' attached promises
		// through the MCommitRequest liveness path, which is paced by
		// this timeout.
		return tempo.New(pid, topo, tempo.Config{PromiseInterval: 2 * time.Millisecond, RecoveryTimeout: 100 * time.Millisecond})
	}
	for _, pid := range []ids.ProcessID{1, 2} {
		n := cluster.NewNode(pid, mkRep(pid), addrs)
		n.StartListener(lns[pid])
		t.Cleanup(n.Close)
	}

	sess, err := client.New(client.Config{
		Addrs:         addrs,
		Prefer:        3,
		RedialBackoff: 200 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Home is down: the first request pays the failed dial, fails over,
	// and succeeds; follow-ups skip the dead replica via the backoff.
	if err := sess.Put(ctx, "fo", []byte("v1")); err != nil {
		t.Fatalf("put with home down: %v", err)
	}
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := sess.Put(ctx, "fo", []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 400*time.Millisecond {
		t.Fatalf("10 puts with home in backoff took %v: requests are paying dial attempts", d)
	}

	// Node 3 comes up on its advertised address (as a restart would)...
	ln1, err := net.Listen("tcp", homeAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", homeAddr, err)
	}
	rep1 := mkRep(3)
	n1 := cluster.NewNode(3, rep1, addrs)
	n1.StartListener(ln1)
	t.Cleanup(n1.Close)

	// ...and after the backoff expires the session re-balances to it:
	// the home replica starts coordinating this session's commands
	// again, observable through its coordinator stats.
	time.Sleep(250 * time.Millisecond)
	before, _, _ := rep1.Stats()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sess.Put(ctx, "fo", []byte("v3")); err != nil {
			t.Fatal(err)
		}
		fast, slow, rec := rep1.Stats()
		if fast+slow+rec > before {
			break // the home replica coordinated a command again
		}
		if time.Now().After(deadline) {
			t.Fatal("session never re-balanced to the recovered home replica")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
