package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"tempo/internal/ids"
)

func backoffSession(t *testing.T, addr string, base, max time.Duration) *Session {
	t.Helper()
	s, err := New(Config{
		Addrs:            map[ids.ProcessID]string{1: addr},
		RedialBackoff:    base,
		RedialBackoffMax: max,
		DialTimeout:      500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func waitOf(t *testing.T, s *Session, before time.Time) time.Duration {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.down[1]
	if !ok {
		t.Fatal("no backoff recorded")
	}
	return b.until.Sub(before)
}

func TestRedialBackoffGrowsAndCaps(t *testing.T) {
	const base, max = 100 * time.Millisecond, 800 * time.Millisecond
	s := backoffSession(t, "127.0.0.1:1", base, max)
	for i := 0; i < 10; i++ {
		before := time.Now()
		s.noteDialFailure(1)
		wait := waitOf(t, s, before)
		want := base << i
		if want > max {
			want = max
		}
		if wait > want {
			t.Fatalf("failure %d: wait %v above %v", i+1, wait, want)
		}
		if wait < want/2 {
			t.Fatalf("failure %d: wait %v below the jitter floor %v", i+1, wait, want/2)
		}
	}
}

func TestRedialBackoffFixedWhenMaxDisabled(t *testing.T) {
	// RedialBackoffMax below the base (e.g. -1) pins the legacy
	// fixed-step behavior.
	s := backoffSession(t, "127.0.0.1:1", 200*time.Millisecond, -1)
	for i := 0; i < 5; i++ {
		before := time.Now()
		s.noteDialFailure(1)
		if wait := waitOf(t, s, before); wait > 200*time.Millisecond {
			t.Fatalf("failure %d: wait %v grew past the fixed step", i+1, wait)
		}
	}
}

// TestFlappingReplicaBackoff drives many sessions against a replica
// that flaps: on failure their backoffs must desynchronize (jitter), on
// heal a successful dial must fully reset the backoff state.
func TestFlappingReplicaBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	discard := func(ln net.Listener) {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}
	go discard(ln)

	const n = 32
	sessions := make([]*Session, n)
	for i := range sessions {
		sessions[i] = backoffSession(t, addr, 50*time.Millisecond, 400*time.Millisecond)
		if _, err := sessions[i].conn(1); err != nil {
			t.Fatalf("initial dial: %v", err)
		}
	}

	// The replica goes down: kill the listener and every live
	// connection, then let each session fail twice.
	ln.Close()
	for _, s := range sessions {
		s.mu.Lock()
		s.conns[1].fail(errors.New("flap"))
		s.mu.Unlock()
	}
	for round := 0; round < 2; round++ {
		for _, s := range sessions {
			if _, err := s.conn(1); err == nil {
				t.Fatal("dial succeeded against a dead replica")
			}
		}
	}

	// Jitter: the sessions' redial deadlines must spread out, not form
	// one synchronized storm.
	distinct := map[time.Time]bool{}
	for _, s := range sessions {
		s.mu.Lock()
		b := s.down[1]
		s.mu.Unlock()
		if b.fails != 2 {
			t.Fatalf("fails = %d, want 2", b.fails)
		}
		distinct[b.until] = true
	}
	if len(distinct) < n/4 {
		t.Fatalf("only %d distinct redial deadlines across %d sessions: synchronized storm", len(distinct), n)
	}

	// Heal: rebind the address; a successful dial clears the backoff
	// state entirely, so a later blip restarts from the base step.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer ln2.Close()
	go discard(ln2)
	for _, s := range sessions {
		if _, err := s.conn(1); err != nil {
			t.Fatalf("dial after heal: %v", err)
		}
		s.mu.Lock()
		_, stillDown := s.down[1]
		s.mu.Unlock()
		if stillDown {
			t.Fatal("successful dial did not clear the backoff state")
		}
	}
}
