package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

// keyOnShard returns a key owned by the given shard.
func keyOnShard(t *testing.T, topo *topology.Topology, shard ids.ShardID, tag string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%s-%d", tag, i)
		if topo.ShardOf(command.Key(k)) == shard {
			return k
		}
	}
	t.Fatalf("no key found on shard %d", shard)
	return ""
}

// TestCrossShardDoMergesResults submits commands spanning two and three
// shards and checks that the future completes with one merged result in
// op order: every op's value at its own position, across shards.
func TestCrossShardDoMergesResults(t *testing.T) {
	addrs, topo := startShardedCluster(t, 3, 4)
	sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	k0 := keyOnShard(t, topo, 0, "a")
	k1 := keyOnShard(t, topo, 1, "b")
	k2 := keyOnShard(t, topo, 2, "c")

	// One command, two shards, mixing puts and a get of a key written in
	// the same command? No — ops of one command apply atomically but a
	// get in the same command observes the put (apply order within the
	// command is op order per shard). Keep it simple: write both, then
	// read both plus a third shard's missing key.
	if _, err := sess.Execute(ctx,
		command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte("v0")},
		command.Op{Kind: command.Put, Key: command.Key(k1), Value: []byte("v1")},
	); err != nil {
		t.Fatalf("cross-shard put: %v", err)
	}

	// Read in the opposite op order to prove positions are preserved by
	// the merge, with a third shard (missing key -> nil) in the middle.
	vals, err := sess.Execute(ctx,
		command.Op{Kind: command.Get, Key: command.Key(k1)},
		command.Op{Kind: command.Get, Key: command.Key(k2)},
		command.Op{Kind: command.Get, Key: command.Key(k0)},
	)
	if err != nil {
		t.Fatalf("cross-shard get: %v", err)
	}
	if len(vals) != 3 {
		t.Fatalf("got %d values, want 3", len(vals))
	}
	if string(vals[0]) != "v1" {
		t.Errorf("vals[0] = %q, want v1", vals[0])
	}
	if vals[1] != nil {
		t.Errorf("vals[1] = %q, want nil (missing key)", vals[1])
	}
	if string(vals[2]) != "v0" {
		t.Errorf("vals[2] = %q, want v0", vals[2])
	}
}

// TestCrossShardAtomicTransfer runs concurrent cross-shard transfers
// against concurrent cross-shard reads and checks the reads never see a
// torn state: both keys are updated under one final timestamp.
func TestCrossShardAtomicTransfer(t *testing.T) {
	addrs, topo := startShardedCluster(t, 3, 2)
	sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	alice := keyOnShard(t, topo, 0, "alice")
	bob := keyOnShard(t, topo, 1, "bob")

	// Writers flip (alice, bob) between ("x","x") and ("y","y"); readers
	// must always observe equal values.
	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, rounds+1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			v := []byte{byte('x' + i%2)}
			if _, err := sess.Execute(ctx,
				command.Op{Kind: command.Put, Key: command.Key(alice), Value: v},
				command.Op{Kind: command.Put, Key: command.Key(bob), Value: v},
			); err != nil {
				errs <- fmt.Errorf("transfer %d: %w", i, err)
				return
			}
		}
	}()
	reader, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	for i := 0; i < rounds; i++ {
		vals, err := reader.Execute(ctx,
			command.Op{Kind: command.Get, Key: command.Key(alice)},
			command.Op{Kind: command.Get, Key: command.Key(bob)},
		)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(vals[0]) != string(vals[1]) {
			t.Fatalf("torn read %d: alice=%q bob=%q", i, vals[0], vals[1])
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMixedBatchedAndCrossShard interleaves batched single-shard
// commands with cross-shard commands on one session and checks every
// result routes back intact: the regression guard for the batcher's
// cross-shard bypass (a cross-shard command must never be coalesced
// into a single-shard batch or answered with one shard's segment).
func TestMixedBatchedAndCrossShard(t *testing.T) {
	addrs, topo := startShardedCluster(t, 3, 2)
	sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	k0 := keyOnShard(t, topo, 0, "m0")
	k1 := keyOnShard(t, topo, 1, "m1")

	const n = 64
	single := make([]*client.Future, n)
	cross := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		// Two single-shard puts (batchable, different shards) and one
		// cross-shard put of both keys, all pipelined.
		single[i] = sess.Do(ctx, command.Op{Kind: command.Put, Key: command.Key(fmt.Sprintf("%s-s-%d", k0, i)), Value: []byte{byte(i)}})
		cross[i] = sess.Do(ctx,
			command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte{byte(i)}},
			command.Op{Kind: command.Put, Key: command.Key(k1), Value: []byte{byte(i)}},
		)
	}
	for i := 0; i < n; i++ {
		if vals, err := single[i].Wait(ctx); err != nil {
			t.Fatalf("single %d: %v", i, err)
		} else if len(vals) != 1 {
			t.Fatalf("single %d: %d values, want 1", i, len(vals))
		}
		if vals, err := cross[i].Wait(ctx); err != nil {
			t.Fatalf("cross %d: %v", i, err)
		} else if len(vals) != 2 {
			t.Fatalf("cross %d: %d values, want 2 (merged across shards)", i, len(vals))
		}
	}
	// The two cross-shard keys must hold the same (last-executed) value.
	vals, err := sess.Execute(ctx,
		command.Op{Kind: command.Get, Key: command.Key(k0)},
		command.Op{Kind: command.Get, Key: command.Key(k1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals[0]) != 1 || len(vals[1]) != 1 || vals[0][0] != vals[1][0] {
		t.Fatalf("cross-shard keys diverged: %v vs %v", vals[0], vals[1])
	}
}

// TestWrongShardPartialDial dials only shard 0's replicas of a 2-shard
// topology: commands on shard-1 keys must fail with the typed
// ErrWrongShard, not a generic dial error, and shard-0 commands keep
// working.
func TestWrongShardPartialDial(t *testing.T) {
	addrs, topo := startShardedCluster(t, 3, 2)
	partial := make(map[ids.ProcessID]string)
	for _, pi := range topo.Processes() {
		if pi.Shard == 0 {
			partial[pi.ID] = addrs[pi.ID]
		}
	}
	sess, err := client.New(client.Config{Addrs: partial, Topo: topo, Site: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	k0 := keyOnShard(t, topo, 0, "w0")
	k1 := keyOnShard(t, topo, 1, "w1")

	if err := sess.Put(ctx, k0, []byte("ok")); err != nil {
		t.Fatalf("put on dialed shard: %v", err)
	}
	if err := sess.Put(ctx, k1, []byte("nope")); !errors.Is(err, client.ErrWrongShard) {
		t.Fatalf("put on undialed shard: got %v, want ErrWrongShard", err)
	}
	// A cross-shard command touching the undialed shard fails the same
	// way (its watch leg has no candidate replica).
	_, err = sess.Execute(ctx,
		command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte("a")},
		command.Op{Kind: command.Put, Key: command.Key(k1), Value: []byte("b")},
	)
	if !errors.Is(err, client.ErrWrongShard) {
		t.Fatalf("cross-shard with undialed shard: got %v, want ErrWrongShard", err)
	}
}
